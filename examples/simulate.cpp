// simulate: general-purpose command-line driver for the simulator — every
// model knob from one flag set, one run (or R replications), full report.
//
//   ./build/examples/simulate --protocol=g2pl --clients=50 --latency=500
//       --read-prob=0.6 --txns=10000 --runs=3
//
// Run with --help for the complete flag list.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cc/registry.h"
#include "harness/cli.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "lease/lease.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "protocols/config.h"
#include "protocols/engine.h"

namespace {

using gtpl::harness::ParseDoubleValue;
using gtpl::harness::ParseInt32Value;
using gtpl::harness::ParseInt64Value;

/// Strict numeric flag parsing: the whole value must parse (from_chars), or
/// the flag is rejected with a diagnostic — `--fl-cap=abc` is an error, not
/// a silent 0 the way the atoi/atof family would read it.
bool BadValue(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  return false;
}

bool ParseInt32Flag(const char* flag, const char* value, int32_t* out) {
  return ParseInt32Value(value, out) || BadValue(flag, value);
}

bool ParseInt64Flag(const char* flag, const char* value, int64_t* out) {
  return ParseInt64Value(value, out) || BadValue(flag, value);
}

bool ParseDoubleFlag(const char* flag, const char* value, double* out) {
  return ParseDoubleValue(value, out) || BadValue(flag, value);
}

struct Flags {
  gtpl::proto::SimConfig config;
  int32_t runs = 1;
  int jobs = 1;  // replications run serially unless --jobs raises it
  std::string trace_path;  // empty = tracing off
  gtpl::obs::TraceFormat trace_format = gtpl::obs::TraceFormat::kJsonl;
  std::string metrics_path;  // empty = no metrics file
  gtpl::obs::MetricsFormat metrics_format = gtpl::obs::MetricsFormat::kCsv;
};

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --protocol=NAME      registered cc engine (default s2pl); --cc=NAME\n"
      "                       is an alias. Registered engines:\n"
      "                       %s\n"
      "  --clients=N          number of client sites (default 50)\n"
      "  --servers=N          data servers the items shard across (1)\n"
      "  --routing=hash|range item-to-shard routing (hash)\n"
      "  --commit=NAME        cross-server commit path (classic). Paths:\n"
      "                       %s\n"
      "  --server-latency=N   server<->server one-way latency override;\n"
      "                       -1 = same as --latency (-1)\n"
      "  --latency=N          one-way network latency, time units (500)\n"
      "  --jitter=N           extra U[0,N] per message (0)\n"
      "  --spread=F           client distance spread in [0,1] (0)\n"
      "  --bandwidth=F        link bandwidth, payload units/tick; 0 = inf (0)\n"
      "  --nic-queue          FIFO per-endpoint NIC queues (off)\n"
      "  --cross-traffic=F    background NIC load in [0,1) (0)\n"
      "  --items=N            hot data items at the server (25)\n"
      "  --ops=MIN:MAX        items accessed per txn (1:5)\n"
      "  --read-prob=F        probability an access is a read (0.5)\n"
      "  --zipf=F             access skew theta, 0 = uniform (0)\n"
      "  --repeat-prob=F      probability a txn re-accesses the previous\n"
      "                       txn's items (0)\n"
      "  --sorted             access items in ascending id order\n"
      "  --lease=NAME         client lock-lease mode (none). Modes:\n"
      "                       %s\n"
      "  --lease-ttl=N        lease lifetime, time units; 0 = infinite (0)\n"
      "  --lease-max-held=N   max unpinned leases per client; 0 = inf (0)\n"
      "  --txns=N             measured committed transactions (10000)\n"
      "  --warmup=N           transient-phase transactions excluded (1000)\n"
      "  --runs=N             independent replications (1)\n"
      "  --jobs=N             worker threads for replications (1; 0 = auto)\n"
      "  --seed=N             base RNG seed (1)\n"
      "  --mr1w=0|1           g-2PL MR1W optimization (1)\n"
      "  --fl-cap=N           g-2PL forward-list length cap, 0 = none (0)\n"
      "  --adaptive-window    g-2PL per-item adaptive FL cap (off)\n"
      "  --adaptive-init=N    adaptive: initial cap per item (4)\n"
      "  --adaptive-min=N     adaptive: cap floor, >= 1 (1)\n"
      "  --adaptive-max=N     adaptive: cap ceiling (32)\n"
      "  --adaptive-shrink=F  adaptive: multiplicative decrease in (0,1) (0.5)\n"
      "  --adaptive-grow=N    adaptive: additive increase step (1)\n"
      "  --adaptive-hysteresis=N  adaptive: clean windows before growth (2)\n"
      "  --expand-reads       g-2PL read-group expansion (off)\n"
      "  --ordering=fifo|reads-first|writes-first   g-2PL FL order (fifo)\n"
      "  --charged-abort-notice   charge one latency for abort notices\n"
      "  --wal-force-delay=N  simulated log-force latency (0)\n"
      "  --sim-threads=N      intra-run worker threads (1 = the serial\n"
      "                       engine; N > 1 runs the conservative per-shard\n"
      "                       parallel engine, bit-identical at any N)\n"
      "  --trace=PATH         write the structured observability trace there\n"
      "                       (runs > 1 append .repN per replication)\n"
      "  --trace-format=jsonl|chrome   trace file format (jsonl; chrome\n"
      "                       loads into chrome://tracing / Perfetto)\n"
      "  --trace-stream=PATH  stream the trace to PATH while running\n"
      "                       (bounded memory; JSONL only, byte-identical\n"
      "                       to --trace; runs > 1 append .repN)\n"
      "  --trace-flush-bytes=N  streaming chunk watermark, bytes (1048576)\n"
      "  --metrics-interval=N sample time-series gauges every N simulated\n"
      "                       time units (>= 1; off by default; needs\n"
      "                       --metrics-out)\n"
      "  --metrics-out=PATH   write the sampled series there (runs > 1\n"
      "                       append .repN per replication)\n"
      "  --metrics-format=csv|jsonl   metrics file format (csv)\n",
      prog, gtpl::cc::EngineNames().c_str(),
      gtpl::proto::CommitPathNames().c_str(),
      gtpl::lease::LeaseModeNames().c_str());
}

bool ParseFlag(const std::string& arg, Flags* flags) {
  auto value_of = [&arg](const char* prefix) -> const char* {
    const size_t len = std::strlen(prefix);
    if (arg.compare(0, len, prefix) == 0) return arg.c_str() + len;
    return nullptr;
  };
  gtpl::proto::SimConfig& config = flags->config;
  if (const char* v1 = value_of("--protocol=")) {
    // Strict: unknown names fail (non-zero exit) listing the registry.
    const gtpl::Status status =
        gtpl::cc::ParseEngineName(v1, &config.protocol);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return BadValue("--protocol", v1);
    }
  } else if (const char* vcc = value_of("--cc=")) {
    const gtpl::Status status =
        gtpl::cc::ParseEngineName(vcc, &config.protocol);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return BadValue("--cc", vcc);
    }
  } else if (const char* v2 = value_of("--clients=")) {
    return ParseInt32Flag("--clients", v2, &config.num_clients);
  } else if (const char* vs = value_of("--servers=")) {
    return ParseInt32Flag("--servers", vs, &config.num_servers);
  } else if (const char* vr = value_of("--routing=")) {
    const std::string name = vr;
    if (name == "hash") {
      config.shard_routing = gtpl::proto::ShardRouting::kHash;
    } else if (name == "range") {
      config.shard_routing = gtpl::proto::ShardRouting::kRange;
    } else {
      return BadValue("--routing", vr);
    }
  } else if (const char* vcp = value_of("--commit=")) {
    // Strict: unknown names fail (non-zero exit) listing the registry.
    const gtpl::Status status =
        gtpl::proto::ParseCommitPathName(vcp, &config.commit_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return BadValue("--commit", vcp);
    }
  } else if (const char* vsl = value_of("--server-latency=")) {
    return ParseInt64Flag("--server-latency", vsl, &config.server_latency);
  } else if (const char* v3 = value_of("--latency=")) {
    return ParseInt64Flag("--latency", v3, &config.latency);
  } else if (const char* v4 = value_of("--jitter=")) {
    return ParseInt64Flag("--jitter", v4, &config.latency_jitter);
  } else if (const char* v5 = value_of("--spread=")) {
    return ParseDoubleFlag("--spread", v5, &config.latency_spread);
  } else if (const char* vb = value_of("--bandwidth=")) {
    return ParseDoubleFlag("--bandwidth", vb, &config.link_bandwidth);
  } else if (arg == "--nic-queue") {
    config.nic_queue = true;
  } else if (const char* vc = value_of("--cross-traffic=")) {
    return ParseDoubleFlag("--cross-traffic", vc, &config.cross_traffic_load);
  } else if (const char* v6 = value_of("--items=")) {
    return ParseInt32Flag("--items", v6, &config.workload.num_items);
  } else if (const char* v7 = value_of("--ops=")) {
    const char* colon = std::strchr(v7, ':');
    if (colon == nullptr) return BadValue("--ops", v7);
    const std::string lo_text(v7, colon);
    int32_t lo = 0;
    int32_t hi = 0;
    if (!ParseInt32Value(lo_text.c_str(), &lo) ||
        !ParseInt32Value(colon + 1, &hi)) {
      return BadValue("--ops", v7);
    }
    config.workload.min_items_per_txn = lo;
    config.workload.max_items_per_txn = hi;
  } else if (const char* v8 = value_of("--read-prob=")) {
    return ParseDoubleFlag("--read-prob", v8, &config.workload.read_prob);
  } else if (const char* v9 = value_of("--zipf=")) {
    return ParseDoubleFlag("--zipf", v9, &config.workload.zipf_theta);
  } else if (const char* vrp = value_of("--repeat-prob=")) {
    return ParseDoubleFlag("--repeat-prob", vrp,
                           &config.workload.repeat_prob);
  } else if (arg == "--sorted") {
    config.workload.sorted_access = true;
  } else if (const char* vlm = value_of("--lease=")) {
    // Strict: unknown names fail (non-zero exit) listing the registry.
    const gtpl::Status status =
        gtpl::lease::ParseLeaseModeName(vlm, &config.lease.mode);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return BadValue("--lease", vlm);
    }
  } else if (const char* vlt = value_of("--lease-ttl=")) {
    return ParseInt64Flag("--lease-ttl", vlt, &config.lease.ttl);
  } else if (const char* vlh = value_of("--lease-max-held=")) {
    return ParseInt32Flag("--lease-max-held", vlh, &config.lease.max_held);
  } else if (const char* v10 = value_of("--txns=")) {
    return ParseInt64Flag("--txns", v10, &config.measured_txns);
  } else if (const char* v11 = value_of("--warmup=")) {
    return ParseInt64Flag("--warmup", v11, &config.warmup_txns);
  } else if (const char* v12 = value_of("--runs=")) {
    return ParseInt32Flag("--runs", v12, &flags->runs);
  } else if (const char* vj = value_of("--jobs=")) {
    int32_t jobs = 0;
    if (!ParseInt32Flag("--jobs", vj, &jobs)) return false;
    flags->jobs = jobs;
  } else if (const char* v13 = value_of("--seed=")) {
    int64_t seed = 0;
    if (!ParseInt64Flag("--seed", v13, &seed)) return false;
    config.seed = static_cast<uint64_t>(seed);
  } else if (const char* v14 = value_of("--mr1w=")) {
    int32_t mr1w = 0;
    if (!ParseInt32Flag("--mr1w", v14, &mr1w)) return false;
    config.g2pl.mr1w = mr1w != 0;
  } else if (const char* v15 = value_of("--fl-cap=")) {
    return ParseInt32Flag("--fl-cap", v15,
                          &config.g2pl.max_forward_list_length);
  } else if (arg == "--adaptive-window") {
    config.g2pl.adaptive.enabled = true;
  } else if (const char* va1 = value_of("--adaptive-init=")) {
    return ParseInt32Flag("--adaptive-init", va1,
                          &config.g2pl.adaptive.initial_cap);
  } else if (const char* va2 = value_of("--adaptive-min=")) {
    return ParseInt32Flag("--adaptive-min", va2,
                          &config.g2pl.adaptive.min_cap);
  } else if (const char* va3 = value_of("--adaptive-max=")) {
    return ParseInt32Flag("--adaptive-max", va3,
                          &config.g2pl.adaptive.max_cap);
  } else if (const char* va4 = value_of("--adaptive-shrink=")) {
    return ParseDoubleFlag("--adaptive-shrink", va4,
                           &config.g2pl.adaptive.decrease_factor);
  } else if (const char* va5 = value_of("--adaptive-grow=")) {
    return ParseInt32Flag("--adaptive-grow", va5,
                          &config.g2pl.adaptive.increase_step);
  } else if (const char* va6 = value_of("--adaptive-hysteresis=")) {
    return ParseInt32Flag("--adaptive-hysteresis", va6,
                          &config.g2pl.adaptive.hysteresis);
  } else if (arg == "--expand-reads") {
    config.g2pl.expand_read_groups = true;
  } else if (const char* v16 = value_of("--ordering=")) {
    const std::string name = v16;
    if (name == "fifo") {
      config.g2pl.ordering = gtpl::core::OrderingPolicy::kFifo;
    } else if (name == "reads-first") {
      config.g2pl.ordering = gtpl::core::OrderingPolicy::kReadsFirst;
    } else if (name == "writes-first") {
      config.g2pl.ordering = gtpl::core::OrderingPolicy::kWritesFirst;
    } else {
      return BadValue("--ordering", v16);
    }
  } else if (arg == "--charged-abort-notice") {
    config.instant_abort_notice = false;
  } else if (const char* v17 = value_of("--wal-force-delay=")) {
    return ParseInt64Flag("--wal-force-delay", v17, &config.wal_force_delay);
  } else if (const char* vst = value_of("--sim-threads=")) {
    // Strict: 0, negatives, and malformed values all fail (non-zero exit).
    int32_t threads = 0;
    if (!ParseInt32Flag("--sim-threads", vst, &threads)) return false;
    if (threads < 1 || threads > 256) return BadValue("--sim-threads", vst);
    config.sim_threads = threads;
  } else if (const char* vt = value_of("--trace=")) {
    if (*vt == '\0') return BadValue("--trace", vt);
    flags->trace_path = vt;
    config.obs_trace = true;
  } else if (const char* vf = value_of("--trace-format=")) {
    const std::string name = vf;
    if (name == "jsonl") {
      flags->trace_format = gtpl::obs::TraceFormat::kJsonl;
    } else if (name == "chrome") {
      flags->trace_format = gtpl::obs::TraceFormat::kChrome;
    } else {
      return BadValue("--trace-format", vf);
    }
  } else if (const char* vts = value_of("--trace-stream=")) {
    if (*vts == '\0') return BadValue("--trace-stream", vts);
    config.trace_stream_path = vts;
    config.obs_trace = true;
  } else if (const char* vfb = value_of("--trace-flush-bytes=")) {
    int64_t bytes = 0;
    if (!ParseInt64Flag("--trace-flush-bytes", vfb, &bytes)) return false;
    if (bytes < 1) return BadValue("--trace-flush-bytes", vfb);
    config.trace_flush_bytes = bytes;
  } else if (const char* vmi = value_of("--metrics-interval=")) {
    // Strict: 0, negatives, and malformed values all fail (non-zero exit).
    int64_t interval = 0;
    if (!ParseInt64Flag("--metrics-interval", vmi, &interval)) return false;
    if (interval < 1) return BadValue("--metrics-interval", vmi);
    config.metrics_interval = interval;
  } else if (const char* vmo = value_of("--metrics-out=")) {
    if (*vmo == '\0') return BadValue("--metrics-out", vmo);
    flags->metrics_path = vmo;
  } else if (const char* vmf = value_of("--metrics-format=")) {
    const std::string name = vmf;
    if (name == "csv") {
      flags->metrics_format = gtpl::obs::MetricsFormat::kCsv;
    } else if (name == "jsonl") {
      flags->metrics_format = gtpl::obs::MetricsFormat::kJsonl;
    } else {
      return BadValue("--metrics-format", vmf);
    }
  } else {
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.config.measured_txns = 10000;
  flags.config.warmup_txns = 1000;
  flags.config.max_sim_time = 60'000'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || !ParseFlag(arg, &flags)) {
      PrintUsage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (!flags.config.trace_stream_path.empty()) {
    if (!flags.trace_path.empty()) {
      std::fprintf(stderr, "--trace-stream and --trace are mutually "
                           "exclusive (one trace destination per run)\n");
      return 2;
    }
    if (flags.trace_format == gtpl::obs::TraceFormat::kChrome) {
      std::fprintf(stderr, "--trace-stream writes JSONL only; "
                           "--trace-format=chrome needs the buffered "
                           "--trace path\n");
      return 2;
    }
  }
  if (flags.config.metrics_interval > 0 && flags.metrics_path.empty()) {
    std::fprintf(stderr, "--metrics-interval needs --metrics-out=PATH\n");
    return 2;
  }
  if (flags.config.metrics_interval == 0 && !flags.metrics_path.empty()) {
    std::fprintf(stderr, "--metrics-out needs --metrics-interval=N\n");
    return 2;
  }
  const gtpl::Status status = flags.config.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 status.ToString().c_str());
    return 2;
  }

  std::printf("protocol %s, %d clients, latency %lld (+U[0,%lld], spread "
              "%.2f), %d items, ops %d-%d, pr %.2f, zipf %.2f\n",
              gtpl::proto::ToString(flags.config.protocol),
              flags.config.num_clients,
              static_cast<long long>(flags.config.latency),
              static_cast<long long>(flags.config.latency_jitter),
              flags.config.latency_spread, flags.config.workload.num_items,
              flags.config.workload.min_items_per_txn,
              flags.config.workload.max_items_per_txn,
              flags.config.workload.read_prob,
              flags.config.workload.zipf_theta);
  if (flags.config.link_bandwidth > 0.0) {
    std::printf("link bandwidth %.2f units/tick, NIC queues %s, "
                "cross-traffic load %.2f\n",
                flags.config.link_bandwidth,
                flags.config.nic_queue ? "on" : "off",
                flags.config.cross_traffic_load);
  }
  if (flags.config.num_servers > 1) {
    std::printf("%d servers, %s routing, commit path %s",
                flags.config.num_servers,
                gtpl::proto::ToString(flags.config.shard_routing),
                gtpl::proto::ToString(flags.config.commit_path));
    if (flags.config.server_latency >= 0) {
      std::printf(", server-server latency %lld",
                  static_cast<long long>(flags.config.server_latency));
    }
    std::printf("\n");
  }
  if (flags.config.lease.mode != gtpl::lease::LeaseMode::kNone) {
    std::printf("lease mode %s, ttl %lld, max held %d, repeat prob %.2f\n",
                gtpl::lease::ToString(flags.config.lease.mode),
                static_cast<long long>(flags.config.lease.ttl),
                flags.config.lease.max_held,
                flags.config.workload.repeat_prob);
  }
  if (flags.config.sim_threads > 1) {
    std::printf("parallel engine: %d sim threads, lookahead %lld\n",
                flags.config.sim_threads,
                static_cast<long long>(flags.config.latency));
  }
  if (flags.config.g2pl.adaptive.enabled) {
    const gtpl::core::AdaptiveWindowOptions& a = flags.config.g2pl.adaptive;
    std::printf("adaptive window: cap %d in [%d,%d], shrink %.2f, grow %d, "
                "hysteresis %d\n",
                a.initial_cap, a.min_cap, a.max_cap, a.decrease_factor,
                a.increase_step, a.hysteresis);
  }
  std::printf("\n");

  const gtpl::harness::PointResult point =
      gtpl::harness::RunReplicated(flags.config, flags.runs, flags.jobs);
  gtpl::harness::Table table({"metric", "value"});
  table.AddRow({"replications", std::to_string(flags.runs)});
  table.AddRow({"mean response time",
                gtpl::harness::FmtCi(point.response.mean,
                                     point.response.ci_half_width)});
  table.AddRow({"relative precision",
                gtpl::harness::Fmt(100 * point.response.relative_precision,
                                   2) +
                    "%"});
  table.AddRow({"abort percentage",
                gtpl::harness::FmtCi(point.abort_pct.mean,
                                     point.abort_pct.ci_half_width, 2)});
  table.AddRow({"response p50 / p95 / p99",
                gtpl::harness::Fmt(point.response_p50, 0) + " / " +
                    gtpl::harness::Fmt(point.response_p95, 0) + " / " +
                    gtpl::harness::Fmt(point.response_p99, 0)});
  table.AddRow({"  lock wait",
                gtpl::harness::Fmt(point.mean_lock_wait, 1)});
  table.AddRow({"  propagation",
                gtpl::harness::Fmt(point.mean_propagation, 1)});
  table.AddRow({"  transmission+queueing",
                gtpl::harness::Fmt(point.mean_queueing, 1)});
  table.AddRow({"  execution (think)",
                gtpl::harness::Fmt(point.mean_execution, 1)});
  table.AddRow({"  commit phase",
                gtpl::harness::Fmt(point.mean_commit_phase, 1)});
  table.AddRow({"op wait p50 / p99",
                gtpl::harness::Fmt(point.op_wait_p50, 0) + " / " +
                    gtpl::harness::Fmt(point.op_wait_p99, 0)});
  table.AddRow({"throughput (commits/1000u)",
                gtpl::harness::Fmt(point.throughput.mean, 3)});
  table.AddRow({"messages per commit",
                gtpl::harness::Fmt(point.mean_messages_per_commit, 1)});
  if (flags.config.num_servers > 1) {
    table.AddRow({"cross-server commits",
                  gtpl::harness::Fmt(point.cross_server_pct, 1) + "%"});
    table.AddRow({"  commit prepare / vote span",
                  gtpl::harness::Fmt(point.mean_commit_prepare, 1) + " / " +
                      gtpl::harness::Fmt(point.mean_commit_vote, 1)});
    table.AddRow({"  cross-commit span p50",
                  gtpl::harness::Fmt(point.xcommit_p50, 0)});
    table.AddRow({"  commit WAN flights",
                  gtpl::harness::Fmt(point.mean_commit_flights, 2)});
    table.AddRow({"  fastpath / coord / fallback",
                  gtpl::harness::Fmt(point.fastpath_pct, 1) + "% / " +
                      gtpl::harness::Fmt(point.coord_remote_pct, 1) + "% / " +
                      gtpl::harness::Fmt(point.fallback_pct, 1) + "%"});
  }
  if (flags.config.link_bandwidth > 0.0) {
    table.AddRow({"queue delay per message",
                  gtpl::harness::Fmt(point.mean_queue_delay, 2)});
    table.AddRow({"queue delay p99",
                  gtpl::harness::Fmt(point.queue_delay_p99, 1)});
    table.AddRow({"peak link utilization",
                  gtpl::harness::Fmt(100 * point.mean_link_utilization, 1) +
                      "%"});
  }
  if (flags.config.protocol == gtpl::proto::Protocol::kG2pl) {
    table.AddRow({"mean forward-list length",
                  gtpl::harness::Fmt(point.fl_length.mean, 2)});
    if (flags.config.g2pl.adaptive.enabled) {
      table.AddRow({"mean effective cap",
                    gtpl::harness::Fmt(point.mean_effective_cap, 2)});
      table.AddRow({"final effective cap",
                    gtpl::harness::Fmt(point.final_effective_cap, 2)});
      table.AddRow({"cap increases / decreases",
                    gtpl::harness::Fmt(point.mean_cap_increases, 1) + " / " +
                        gtpl::harness::Fmt(point.mean_cap_decreases, 1)});
    }
  }
  if (flags.config.lease.mode != gtpl::lease::LeaseMode::kNone) {
    table.AddRow({"lease hits per commit",
                  gtpl::harness::Fmt(point.lease_hits_per_commit, 2)});
    table.AddRow({"lease revokes / releases per commit",
                  gtpl::harness::Fmt(point.lease_revokes_per_commit, 2) +
                      " / " +
                      gtpl::harness::Fmt(point.lease_releases_per_commit, 2)});
    table.AddRow({"  revoke wait (of lock wait)",
                  gtpl::harness::Fmt(point.mean_lease_revoke_wait, 1)});
  }
  if (flags.config.sim_threads > 1) {
    table.AddRow({"sync windows",
                  gtpl::harness::Fmt(point.mean_sync_windows, 0)});
    table.AddRow({"  barrier stalls (LP-windows)",
                  gtpl::harness::Fmt(point.mean_sync_stalls, 0)});
  }
  table.AddRow({"committed transactions", std::to_string(point.total_commits)});
  table.AddRow({"aborted transactions", std::to_string(point.total_aborts)});
  table.Print();
  if (!flags.trace_path.empty()) {
    for (size_t rep = 0; rep < point.traces.size(); ++rep) {
      const std::string path =
          point.traces.size() == 1
              ? flags.trace_path
              : flags.trace_path + ".rep" + std::to_string(rep);
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write trace file %s\n", path.c_str());
        return 2;
      }
      if (flags.trace_format == gtpl::obs::TraceFormat::kChrome) {
        gtpl::obs::WriteChromeTrace(point.traces[rep], out);
      } else {
        gtpl::obs::WriteJsonl(point.traces[rep], out);
      }
      std::printf("trace (%zu events) written to %s\n",
                  point.traces[rep].size(), path.c_str());
    }
  }
  if (!flags.config.trace_stream_path.empty()) {
    std::printf("trace streamed to %s%s\n",
                flags.config.trace_stream_path.c_str(),
                flags.runs > 1 ? ".rep<r> (one file per replication)" : "");
  }
  if (!flags.metrics_path.empty()) {
    for (size_t rep = 0; rep < point.metrics.size(); ++rep) {
      const std::string path =
          point.metrics.size() == 1
              ? flags.metrics_path
              : flags.metrics_path + ".rep" + std::to_string(rep);
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write metrics file %s\n", path.c_str());
        return 2;
      }
      if (flags.metrics_format == gtpl::obs::MetricsFormat::kJsonl) {
        gtpl::obs::WriteMetricsJsonl(point.metric_names, point.metrics[rep],
                                     out);
      } else {
        gtpl::obs::WriteMetricsCsv(point.metric_names, point.metrics[rep],
                                   out);
      }
      std::printf("metrics (%zu rows) written to %s\n",
                  point.metrics[rep].size(), path.c_str());
    }
  }
  if (point.any_timed_out) {
    std::fprintf(stderr, "\nWARNING: at least one replication hit the "
                         "simulation horizon before finishing.\n");
    return 1;
  }
  return 0;
}
