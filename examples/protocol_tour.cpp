// Protocol tour: run the same hot-data workload under all five implemented
// concurrency-control protocols (the paper's s-2PL baseline and g-2PL
// contribution plus the three client-caching families it names) and print a
// side-by-side comparison, then verify that every protocol produced a
// serializable execution using the built-in history checker.
//
//   ./build/examples/protocol_tour [num_clients] [read_prob]

#include <cstdio>
#include <cstdlib>

#include "harness/table.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/metrics.h"

int main(int argc, char** argv) {
  const int num_clients = argc > 1 ? std::atoi(argv[1]) : 25;
  const double read_prob = argc > 2 ? std::atof(argv[2]) : 0.6;
  if (num_clients < 1 || read_prob < 0.0 || read_prob > 1.0) {
    std::fprintf(stderr, "usage: %s [num_clients>=1] [read_prob in 0..1]\n",
                 argv[0]);
    return 2;
  }
  std::printf(
      "One workload, five protocols: %d clients, 25 hot items, latency 250\n"
      "(MAN), read probability %.2f, 2000 measured transactions.\n\n",
      num_clients, read_prob);

  const gtpl::proto::Protocol protocols[] = {
      gtpl::proto::Protocol::kS2pl, gtpl::proto::Protocol::kG2pl,
      gtpl::proto::Protocol::kC2pl, gtpl::proto::Protocol::kCbl,
      gtpl::proto::Protocol::kO2pl};
  gtpl::harness::Table table({"protocol", "mean resp", "p-wait/op", "abort%",
                              "msgs/commit", "throughput", "serializable"});
  for (gtpl::proto::Protocol protocol : protocols) {
    gtpl::proto::SimConfig config;
    config.protocol = protocol;
    config.num_clients = num_clients;
    config.latency = 250;
    config.workload.read_prob = read_prob;
    config.measured_txns = 2000;
    config.warmup_txns = 200;
    config.seed = 99;
    config.record_history = true;
    config.max_sim_time = 60'000'000'000;
    const gtpl::proto::RunResult result = gtpl::proto::RunSimulation(config);
    std::string why;
    const bool serializable =
        gtpl::proto::HistoryIsSerializable(result.history, &why);
    table.AddRow({gtpl::proto::ToString(protocol),
                  gtpl::harness::Fmt(result.response.mean(), 0),
                  gtpl::harness::Fmt(result.op_wait.mean(), 0),
                  gtpl::harness::Fmt(result.AbortPercent(), 1),
                  gtpl::harness::Fmt(static_cast<double>(
                                         result.network.messages) /
                                         static_cast<double>(result.commits),
                                     1),
                  gtpl::harness::Fmt(result.Throughput(), 2),
                  serializable ? "yes" : ("NO: " + why)});
  }
  table.Print();
  std::printf(
      "\nthroughput = committed transactions per 1000 time units;\n"
      "p-wait/op = mean wait from request to data arrival per operation.\n");
  return 0;
}
