// Extension A19: parallel per-shard engine — wall-clock scaling of ONE
// simulation across --sim-threads, with the bit-identical-metrics contract
// checked on every row (DESIGN.md §15).
//
// Unlike the other benches (which parallelize across replications), this
// one parallelizes INSIDE a single run: an 8-shard nowait workload big
// enough that every logical process has real work per conservative window.
// Expected shape: near-linear speedup to the shard count while the
// per-window event load dominates the barrier cost, then a plateau; the
// stall column shows the idle tax of conservative synchronization. The
// serial-engine row is the legacy single-queue engine on the same
// configuration (a different simulation — striped ids, barrier-latched
// gates — so its metrics are a reference, not a comparison target).
//
// Unlike the other benches' CSVs, this one is not byte-identical across
// reruns: the wall s / speedup / Mev/s columns are wall-clock
// measurements. The windows / stall% / resp / abort% columns are
// deterministic, and the byte-identity check below covers every metric.

#include <chrono>
#include <string>
#include <thread>

#include "bench_common.h"
#include "common/check.h"
#include "protocols/parsim.h"

namespace gtpl::bench {
namespace {

/// The metrics every thread count must reproduce byte-for-byte.
std::string MetricKey(const proto::RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld/%lld/%lld/%lld/%a/%a/%llu/%lld/%llu/%llu",
                static_cast<long long>(r.commits),
                static_cast<long long>(r.aborts),
                static_cast<long long>(r.total_commits),
                static_cast<long long>(r.total_aborts), r.response.mean(),
                r.span_lock_wait.mean(),
                static_cast<unsigned long long>(r.network.messages),
                static_cast<long long>(r.end_time),
                static_cast<unsigned long long>(r.sync_windows),
                static_cast<unsigned long long>(r.sync_stalls));
  return buf;
}

void Run(const harness::CliOptions& options) {
  // One 8-shard run, sized so each LP owns 128 clients and a 1024-item
  // slice: enough per-window work that the window parallelism, not the
  // barrier, dominates. Mostly-read nowait keeps the abort path from
  // serializing progress at this client count.
  proto::SimConfig config;
  config.protocol = proto::Protocol::kNoWait;
  config.num_clients = 1024;
  config.num_servers = 8;
  config.latency = 100;
  config.workload.num_items = 8192;
  config.workload.read_prob = 0.8;
  config.instant_abort_notice = false;
  config.max_sim_time = 60'000'000'000;
  harness::ApplyScale(options.scale, &config);

  harness::Table table({"engine", "threads", "wall s", "speedup", "Mev/s",
                        "windows", "stall%", "resp", "abort%"});

  // Legacy serial engine reference (the sim_threads == 1 RunSimulation
  // path on the identical configuration).
  {
    const auto started = std::chrono::steady_clock::now();
    const proto::RunResult serial = proto::RunSimulation(config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    table.AddRow({"serial", "1", harness::Fmt(seconds, 2), "-",
                  harness::Fmt(static_cast<double>(serial.events) / 1e6 /
                                   seconds,
                               1),
                  "-", "-", harness::Fmt(serial.response.mean(), 0),
                  harness::Fmt(serial.AbortPercent(), 1)});
  }

  double base_seconds = 0.0;
  std::string base_key;
  for (int32_t threads : {1, 2, 4, 8}) {
    proto::SimConfig point = config;
    point.sim_threads = threads;
    const auto started = std::chrono::steady_clock::now();
    const proto::RunResult result = proto::RunParallelSimulation(point);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    GTPL_CHECK(!result.timed_out);
    const std::string key = MetricKey(result);
    if (threads == 1) {
      base_seconds = seconds;
      base_key = key;
    } else {
      // The determinism contract, enforced on every scaling row.
      GTPL_CHECK(key == base_key)
          << "metrics diverged at " << threads << " threads";
    }
    const uint64_t lp_windows =
        result.sync_windows * static_cast<uint64_t>(config.num_servers);
    table.AddRow(
        {"parallel", std::to_string(threads), harness::Fmt(seconds, 2),
         harness::Fmt(base_seconds / seconds, 2) + "x",
         harness::Fmt(static_cast<double>(result.events) / 1e6 / seconds, 1),
         std::to_string(result.sync_windows),
         harness::Fmt(lp_windows > 0 ? 100.0 *
                                           static_cast<double>(
                                               result.sync_stalls) /
                                           static_cast<double>(lp_windows)
                                     : 0.0,
                      1),
         harness::Fmt(result.response.mean(), 0),
         harness::Fmt(result.AbortPercent(), 1)});
  }
  table.Print(options.csv_path);
  std::printf("\nmetrics byte-identical across sim-threads 1/2/4/8: OK\n");
  // Speedup is a hardware claim, not a determinism claim: on a
  // single-core host every multithreaded row is necessarily ~1x.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf(
        "note: only %u hardware thread(s) available — wall-clock speedup "
        "requires a multi-core host; the bit-identity contract above is "
        "the machine-independent result\n",
        hw);
  }
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A19: parallel per-shard engine — intra-run scaling",
      options);
  gtpl::bench::Run(options);
  return 0;
}
