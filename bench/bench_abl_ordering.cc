// Ablation A2 (paper §3.3 / §6): forward-list ordering disciplines. The
// paper's default creates forward lists in FIFO arrival order and lists
// "the various ordering disciplines in forming the forward lists" as future
// work; this bench compares FIFO against reads-first (larger leading read
// groups) and writes-first across the read-probability range.

#include "bench_common.h"

#include "core/ordering.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "policy", "g-2PL resp", "abort%",
                        "mean FL length"});
  Grid grid(options);
  struct Row {
    double pr;
    core::OrderingPolicy policy;
    size_t point;
  };
  std::vector<Row> rows;
  for (double pr : {0.25, 0.5, 0.75}) {
    for (core::OrderingPolicy policy :
         {core::OrderingPolicy::kFifo, core::OrderingPolicy::kReadsFirst,
          core::OrderingPolicy::kWritesFirst}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = 500;
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kG2pl;
      config.g2pl.ordering = policy;
      rows.push_back({pr, policy, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& point = grid.Result(row.point);
    table.AddRow({harness::Fmt(row.pr, 2), core::ToString(row.policy),
                  harness::Fmt(point.response.mean, 0),
                  harness::Fmt(point.abort_pct.mean, 2),
                  harness::Fmt(point.fl_length.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Ablation A2: forward-list ordering disciplines (s-WAN)", options);
  gtpl::bench::Run(options);
  return 0;
}
