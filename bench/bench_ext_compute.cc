// Extension A10: computation-time sensitivity. The paper's premise is a
// network-bound system ("the network latency is significantly higher than
// the computation/idle times"; think U[1,3] vs latency up to 750). This
// bench grows the per-operation computation time toward — and past — the
// network latency and shows where g-2PL's round savings stop mattering.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"think (units)", "think/latency", "s-2PL resp",
                        "g-2PL resp", "improv%"});
  const SimTime kLatency = 250;
  Grid grid(options);
  struct Row {
    SimTime think_mid, min_think, max_think;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (SimTime think_mid : {2, 25, 125, 250, 500, 1000}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = kLatency;
    config.workload.read_prob = 0.6;
    config.workload.min_think = std::max<SimTime>(1, think_mid / 2);
    config.workload.max_think = think_mid + think_mid / 2;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({think_mid, config.workload.min_think,
                    config.workload.max_think, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow(
        {std::to_string(row.min_think) + "-" + std::to_string(row.max_think),
         harness::Fmt(static_cast<double>(row.think_mid) / kLatency, 2),
         harness::Fmt(s2pl.response.mean, 0),
         harness::Fmt(g2pl.response.mean, 0),
         harness::Fmt(Improvement(s2pl.response.mean, g2pl.response.mean),
                      1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A10: computation-time sensitivity (pr = 0.6, MAN latency)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
