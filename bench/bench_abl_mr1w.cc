// Ablation A3 (paper §3.4): the MR1W optimization. With MR1W the writer
// following a read group receives an early copy and executes concurrently
// with the readers (two-copy-version-style concurrency); without it the
// writer starts only after every reader's release has reached it. The
// benefit should grow with the read probability (more and larger read
// groups ahead of writers) and vanish at pr = 0.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table(
      {"pr", "g-2PL resp (MR1W)", "g-2PL resp (basic)", "MR1W gain%",
       "abort% (MR1W)", "abort% (basic)"});
  Grid grid(options);
  struct Row {
    double pr;
    size_t mr1w, basic;
  };
  std::vector<Row> rows;
  for (double pr : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = pr;
    config.protocol = proto::Protocol::kG2pl;
    config.g2pl.mr1w = true;
    const size_t mr1w = grid.Add(config);
    config.g2pl.mr1w = false;
    rows.push_back({pr, mr1w, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& with_mr1w = grid.Result(row.mr1w);
    const harness::PointResult& basic = grid.Result(row.basic);
    table.AddRow(
        {harness::Fmt(row.pr, 2), harness::Fmt(with_mr1w.response.mean, 0),
         harness::Fmt(basic.response.mean, 0),
         harness::Fmt(
             Improvement(basic.response.mean, with_mr1w.response.mean), 1),
         harness::Fmt(with_mr1w.abort_pct.mean, 2),
         harness::Fmt(basic.abort_pct.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner("Ablation A3: MR1W on/off (s-WAN)", options);
  gtpl::bench::Run(options);
  return 0;
}
