// A6: google-benchmark microbenchmarks of the core data structures — the
// event queue, the strict-2PL lock table, the precedence graph, and a whole
// small simulation — to keep the substrate's costs visible.

#include <benchmark/benchmark.h>

#include "core/precedence_graph.h"
#include "db/lock_table.h"
#include "protocols/engine.h"
#include "rng/rng.h"
#include "sim/simulator.h"

namespace gtpl {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int64_t n = state.range(0);
  rng::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int64_t i = 0; i < n; ++i) {
      queue.Push(rng.UniformInt(0, 1'000'000), static_cast<uint64_t>(i),
                 [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.Pop().time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t counter = 0;
    for (int64_t i = 0; i < n; ++i) {
      sim.Schedule(i % 97, [&counter] { ++counter; });
    }
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(4096);

void BM_LockTableConflictChurn(benchmark::State& state) {
  const int32_t items = 64;
  rng::Rng rng(7);
  for (auto _ : state) {
    db::LockTable table(items);
    TxnId next = 1;
    std::vector<TxnId> active;
    for (int i = 0; i < 2048; ++i) {
      const TxnId txn = next++;
      table.Request(txn, static_cast<ItemId>(rng.UniformInt(0, items - 1)),
                    rng.Bernoulli(0.5) ? LockMode::kShared
                                       : LockMode::kExclusive);
      active.push_back(txn);
      if (active.size() > 64) {
        table.ReleaseAll(active.front(),
                         [](TxnId, ItemId, LockMode) {});
        active.erase(active.begin());
      }
    }
    for (TxnId txn : active) {
      table.ReleaseAll(txn, [](TxnId, ItemId, LockMode) {});
    }
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_LockTableConflictChurn);

void BM_PrecedenceGraphReachability(benchmark::State& state) {
  // A layered DAG of 512 nodes with fan-out 4.
  core::PrecedenceGraph graph;
  for (TxnId a = 0; a < 512; ++a) {
    for (TxnId d = 1; d <= 4; ++d) {
      if (a + d * 7 < 512) {
        graph.AddEdge(a, a + d * 7, core::kStructuralEdge);
      }
    }
  }
  rng::Rng rng(9);
  for (auto _ : state) {
    const TxnId from = rng.UniformInt(0, 255);
    const TxnId to = rng.UniformInt(256, 511);
    benchmark::DoNotOptimize(graph.CanReach(from, to));
  }
}
BENCHMARK(BM_PrecedenceGraphReachability);

void BM_WholeSimulation(benchmark::State& state) {
  const bool g2pl = state.range(0) != 0;
  for (auto _ : state) {
    proto::SimConfig config;
    config.protocol = g2pl ? proto::Protocol::kG2pl : proto::Protocol::kS2pl;
    config.num_clients = 50;
    config.latency = 500;
    config.workload.read_prob = 0.5;
    config.measured_txns = 500;
    config.warmup_txns = 50;
    config.seed = 5;
    config.max_sim_time = 4'000'000'000;
    const proto::RunResult result = proto::RunSimulation(config);
    benchmark::DoNotOptimize(result.commits);
  }
  state.SetLabel(g2pl ? "g-2PL" : "s-2PL");
}
BENCHMARK(BM_WholeSimulation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gtpl

BENCHMARK_MAIN();
