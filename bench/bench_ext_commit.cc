// A17 — Extension: geo-aware commit paths. Every registered commit-path
// variant (classic, early, fastpath, coord) swept over WAN latency x write
// mix on a 4-server shard layout, with the commit phase split into its
// per-round sub-spans (prepare flight, vote flight, residual) and the
// blocking WAN-flight count per cross-server commit:
//
//  - classic pays two flights (prepare out, votes back) on every
//    cross-server commit; the prepare and vote sub-spans each show one
//    one-way latency.
//  - early overlaps the prepare/vote round with execution (speculative
//    prepares piggybacked on each shard's last operation): under pure
//    propagation every vote is home by commit time, so flights drop to 0
//    and the cross-commit span p50 collapses.
//  - fastpath skips 2PC for single-write-shard transactions (the dominant
//    class under a read-heavy mix) — those commit at 0 flights, the rest
//    fall back to classic, and the p50 of the cross-commit span drops by
//    at least one WAN round.
//  - coord degrades to classic under uniform latency (the placement rule
//    never fires); the second table gives it a fast server mesh
//    (--server-latency) where remote coordination pays two extra client
//    flights to deliver decisions over the cheap mesh — lock-hold
//    reduction traded against response time.

#include "bench_common.h"
#include "cc/registry.h"
#include "protocols/commit.h"

namespace gtpl::bench {
namespace {

struct Row {
  const proto::CommitPathInfo* path;
  SimTime latency;
  SimTime server_latency;
  double read_prob;
};

std::vector<const proto::CommitPathInfo*> SelectedPaths(
    const harness::CliOptions& options) {
  std::vector<const proto::CommitPathInfo*> paths;
  for (const proto::CommitPathInfo& info : proto::CommitPaths()) {
    if (!options.commit.empty() && options.commit != info.name) continue;
    paths.push_back(&info);
  }
  return paths;
}

void AddRow(harness::Table& table, const Row& row,
            const harness::PointResult& point) {
  table.AddRow({row.path->name, std::to_string(row.latency),
                std::to_string(row.server_latency),
                harness::Fmt(row.read_prob, 1),
                harness::Fmt(point.response.mean, 0),
                harness::Fmt(point.abort_pct.mean, 1),
                harness::Fmt(point.cross_server_pct, 1),
                harness::Fmt(point.mean_commit_prepare, 1),
                harness::Fmt(point.mean_commit_vote, 1),
                harness::Fmt(point.mean_commit_phase, 1),
                harness::Fmt(point.xcommit_p50, 0),
                harness::Fmt(point.mean_commit_flights, 2),
                harness::Fmt(point.fastpath_pct, 1),
                harness::Fmt(point.coord_remote_pct, 1),
                harness::Fmt(100 * point.response.relative_precision, 1)});
}

void Run(const harness::CliOptions& options) {
  const std::vector<const proto::CommitPathInfo*> paths =
      SelectedPaths(options);
  const proto::Protocol engine =
      options.cc.empty() ? proto::Protocol::kS2pl : options.cc_protocol;
  const std::vector<std::string> columns = {
      "commit", "latency", "srvlat", "readp",   "resp", "abort%",
      "cross%", "prep",    "vote",   "commit",  "xp50", "flights",
      "fast%",  "coord%",  "ci%"};

  harness::Table main_table(columns);
  TagGrid<Row> grid(options);
  for (const proto::CommitPathInfo* path : paths) {
    for (SimTime latency : {100, 500, 750}) {
      for (double read_prob : {0.5, 0.8}) {
        proto::SimConfig config = PaperBaseConfig();
        harness::ApplyScale(options.scale, &config);
        config.protocol = engine;
        config.num_servers = 4;
        config.latency = latency;
        config.commit_path = path->path;
        config.workload.read_prob = read_prob;
        grid.Add(Row{path, latency, -1, read_prob}, config);
      }
    }
  }
  grid.Run();
  grid.Each([&main_table](const Row& row, const harness::PointResult& point) {
    AddRow(main_table, row, point);
  });
  std::printf("commit paths: variant x latency x write mix (4 servers), "
              "per-round commit sub-spans\n");
  main_table.Print(options.csv_path);
  grid.PrintSummary();

  harness::Table coord_table(columns);
  TagGrid<Row> ablation(options);
  for (const proto::CommitPathInfo* path : paths) {
    if (path->path != proto::CommitPath::kClassic &&
        path->path != proto::CommitPath::kCoord) {
      continue;  // placement ablation: client vs chosen coordinator only
    }
    for (SimTime server_latency : {200, 50, 10}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.protocol = engine;
      config.num_servers = 4;
      config.latency = 200;
      config.server_latency = server_latency;
      config.commit_path = path->path;
      config.workload.read_prob = 0.5;
      ablation.Add(Row{path, 200, server_latency, 0.5}, config);
    }
  }
  ablation.Run();
  ablation.Each(
      [&coord_table](const Row& row, const harness::PointResult& point) {
        AddRow(coord_table, row, point);
      });
  std::printf("\ncoordinator placement ablation (latency 200, shrinking "
              "server mesh):\nremote coordination turns on as the mesh gets "
              "cheap relative to the WAN\n");
  coord_table.Print();
  ablation.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "A17 extension: geo-aware commit paths — variant x latency x write mix",
      options);
  gtpl::bench::Run(options);
  return 0;
}
