// Figures 2-4: mean transaction response time of g-2PL and s-2PL versus
// network latency, for read probabilities 0.0, 0.6 and 1.0 (50 clients, 25
// hot items, 1-5 items per transaction).
//
// Paper shape: response grows with latency for both protocols; g-2PL's curve
// has the lower slope (better WAN scalability) for pr = 0.0 and 0.6, with a
// 19.5-26.9% improvement; only at pr = 1.0 (read-only) is s-2PL better.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "latency", "s-2PL resp", "g-2PL resp",
                        "improv%", "s-2PL ci%", "g-2PL ci%"});
  Grid grid(options);
  struct Row {
    double pr;
    SimTime latency;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (double pr : {0.0, 0.6, 1.0}) {
    for (SimTime latency : {1, 50, 100, 250, 500, 750}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = latency;
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({pr, latency, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.pr, 2), std::to_string(row.latency),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean),
                      1),
                  harness::Fmt(100 * s2pl.response.relative_precision, 1),
                  harness::Fmt(100 * g2pl.response.relative_precision, 1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figures 2-4: mean response time vs network latency (pr = 0.0/0.6/1.0)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
