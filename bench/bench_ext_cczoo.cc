// A16 — Extension: the concurrency-control zoo. Every registered sharded
// engine (s-2PL, g-2PL, no-wait, wait-die, OCC, ordered-release 2PL) swept
// over protocol x WAN latency x contention (zipf skew) x server count, with
// the per-phase lifecycle spans, so the table shows *why* each policy wins
// or loses at each RTT:
//
//  - s-2PL pays lock wait that grows with latency (waiters queue behind
//    WAN-long holds); detection keeps aborts rare but waits long.
//  - no-wait converts every block into a restart: tiny lock wait, abort
//    rates that explode under skew, each retry re-paying propagation.
//  - wait-die sits between: young requesters die, old ones wait.
//  - OCC has zero lock wait by construction; it pays one extra commit round
//    (validation) plus restarts that grow with skew and with latency (the
//    validation window is the whole transaction).
//  - ordered releases participant locks at prepare (one WAN round early),
//    so under contention + sharding its lock-wait column undercuts s-2PL.
//  - g-2PL is the paper's contribution and the reference point.
//
// The second table is the in-order-access ablation (--sorted workload,
// heavy skew): ordered acquisition makes the ordered policy abort-free
// (blocking out of item order never happens), while no-wait keeps
// restarting on every conflict — the Brook-2PL claim in miniature.

#include "bench_common.h"
#include "cc/registry.h"

namespace gtpl::bench {
namespace {

struct Row {
  const cc::EngineInfo* engine;
  int32_t servers;
  SimTime latency;
  double zipf;
};

std::vector<const cc::EngineInfo*> SelectedEngines(
    const harness::CliOptions& options) {
  std::vector<const cc::EngineInfo*> engines;
  for (const cc::EngineInfo& info : cc::Engines()) {
    if (!info.sharded) continue;  // caching engines are single-server only
    if (!options.cc.empty() && options.cc != info.name) continue;
    engines.push_back(&info);
  }
  return engines;
}

void AddSpanRow(harness::Table& table, const Row& row,
                const harness::PointResult& point) {
  table.AddRow({row.engine->name, std::to_string(row.servers),
                std::to_string(row.latency), harness::Fmt(row.zipf, 1),
                harness::Fmt(point.response.mean, 0),
                harness::Fmt(point.abort_pct.mean, 1),
                harness::Fmt(point.mean_lock_wait, 1),
                harness::Fmt(point.mean_propagation, 1),
                harness::Fmt(point.mean_queueing, 1),
                harness::Fmt(point.mean_execution, 1),
                harness::Fmt(point.mean_commit_phase, 1),
                harness::Fmt(point.response_p99, 0),
                harness::Fmt(100 * point.response.relative_precision, 1)});
}

void Run(const harness::CliOptions& options) {
  const std::vector<const cc::EngineInfo*> engines = SelectedEngines(options);
  if (engines.empty()) {
    std::fprintf(stderr, "--cc=%s does not name a sharded engine\n",
                 options.cc.c_str());
    std::exit(2);
  }
  const std::vector<std::string> columns = {
      "cc",    "servers", "latency", "zipf",   "resp", "abort%", "lockw",
      "prop",  "queue",   "think",   "commit", "p99",  "ci%"};

  harness::Table zoo(columns);
  TagGrid<Row> grid(options);
  for (const cc::EngineInfo* engine : engines) {
    for (int32_t servers : {1, 4}) {
      for (SimTime latency : {1, 100, 500}) {
        for (double zipf : {0.0, 0.9}) {
          proto::SimConfig config = PaperBaseConfig();
          harness::ApplyScale(options.scale, &config);
          config.protocol = engine->protocol;
          config.num_servers = servers;
          config.latency = latency;
          config.workload.zipf_theta = zipf;
          grid.Add(Row{engine, servers, latency, zipf}, config);
        }
      }
    }
  }
  grid.Run();
  grid.Each([&zoo](const Row& row, const harness::PointResult& point) {
    AddSpanRow(zoo, row, point);
  });
  std::printf("protocol zoo: engine x latency x contention (zipf), "
              "per-phase spans\n");
  zoo.Print(options.csv_path);
  grid.PrintSummary();

  harness::Table sorted(columns);
  TagGrid<Row> ablation(options);
  for (const cc::EngineInfo* engine : engines) {
    if (std::string(engine->name) == "g2pl" ||
        std::string(engine->name) == "occ") {
      continue;  // lock-order ablation: 2PL-family engines only
    }
    for (int32_t servers : {1, 4}) {
      for (SimTime latency : {1, 100, 500}) {
        proto::SimConfig config = PaperBaseConfig();
        harness::ApplyScale(options.scale, &config);
        config.protocol = engine->protocol;
        config.num_servers = servers;
        config.latency = latency;
        config.workload.zipf_theta = 0.9;
        config.workload.sorted_access = true;
        ablation.Add(Row{engine, servers, latency, 0.9}, config);
      }
    }
  }
  ablation.Run();
  ablation.Each([&sorted](const Row& row, const harness::PointResult& point) {
    AddSpanRow(sorted, row, point);
  });
  std::printf("\nin-order access ablation (--sorted, zipf 0.9): ordered "
              "acquisition is deadlock-free,\nso the ordered policy never "
              "aborts while no-wait keeps restarting\n");
  sorted.Print();
  ablation.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "A16 extension: concurrency-control zoo — protocol x latency x "
      "contention",
      options);
  gtpl::bench::Run(options);
  return 0;
}
