// Extension A15: committed-transaction latency breakdown — where does the
// response time of g-2PL vs s-2PL actually go as the WAN stretches?
//
// The observability spans (DESIGN.md §11) decompose every committed
// transaction's response time into five contiguous phases: lock wait,
// propagation, transmission+queueing, execution (think), and the commit
// phase. This bench sweeps one-way latency for both protocols and prints
// the phase means plus the share of response spent on locks + the network
// (lock wait + propagation + queueing), the cost the paper's g-2PL design
// targets. The expectation, quantified here: as latency grows, s-2PL's
// response becomes dominated by lock wait (grants serialized through the
// remote server queue) while g-2PL converts most of that into direct
// client-to-client propagation — the mechanism behind Figure 2-4's gap.
//
// A second grid repeats the comparison under finite bandwidth so the
// transmission+queueing column is exercised too.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

const char* ProtocolName(proto::Protocol protocol) {
  return protocol == proto::Protocol::kG2pl ? "g2pl" : "s2pl";
}

void AddBreakdownRow(harness::Table* table, const std::string& head,
                     proto::Protocol protocol,
                     const harness::PointResult& point) {
  const double resp = point.response.mean;
  const double contested =
      point.mean_lock_wait + point.mean_propagation + point.mean_queueing;
  table->AddRow({head, ProtocolName(protocol),
                 harness::Fmt(resp, 0),
                 harness::Fmt(point.mean_lock_wait, 0),
                 harness::Fmt(point.mean_propagation, 0),
                 harness::Fmt(point.mean_queueing, 0),
                 harness::Fmt(point.mean_execution, 0),
                 harness::Fmt(point.mean_commit_phase, 0),
                 harness::Fmt(resp > 0.0 ? 100.0 * contested / resp : 0.0, 1),
                 harness::Fmt(point.response_p99, 0)});
}

void RunLatencyBreakdownGrid(const harness::CliOptions& options) {
  std::printf("\n-- phase breakdown x one-way latency (50 clients) --\n");
  harness::Table table({"latency", "proto", "resp", "lockw", "prop", "queue",
                        "think", "commit", "lock+net%", "resp_p99"});
  Grid grid(options);
  struct Row {
    SimTime latency;
    size_t s2pl;
    size_t g2pl;
  };
  std::vector<Row> rows;
  for (SimTime latency : {1, 250, 1000, 4000}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = latency;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({latency, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    AddBreakdownRow(&table, std::to_string(row.latency),
                    proto::Protocol::kS2pl, grid.Result(row.s2pl));
    AddBreakdownRow(&table, std::to_string(row.latency),
                    proto::Protocol::kG2pl, grid.Result(row.g2pl));
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

void RunBandwidthBreakdownGrid(const harness::CliOptions& options) {
  std::printf(
      "\n-- phase breakdown x bandwidth (latency 250, NIC queues on) --\n");
  harness::Table table({"bw", "proto", "resp", "lockw", "prop", "queue",
                        "think", "commit", "lock+net%", "resp_p99"});
  Grid grid(options);
  struct Row {
    double bandwidth;
    size_t s2pl;
    size_t g2pl;
  };
  std::vector<Row> rows;
  for (double bandwidth : {0.0, 2.0, 0.25}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 250;
    config.link_bandwidth = bandwidth;
    config.nic_queue = bandwidth > 0.0;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({bandwidth, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    AddBreakdownRow(&table, harness::Fmt(row.bandwidth, 2),
                    proto::Protocol::kS2pl, grid.Result(row.s2pl));
    AddBreakdownRow(&table, harness::Fmt(row.bandwidth, 2),
                    proto::Protocol::kG2pl, grid.Result(row.g2pl));
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A15: committed-transaction latency breakdown by phase",
      options);
  gtpl::bench::RunLatencyBreakdownGrid(options);
  gtpl::bench::RunBandwidthBreakdownGrid(options);
  return 0;
}
