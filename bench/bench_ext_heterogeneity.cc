// Extension A9: sensitivity to the paper's uniform-latency assumption
// ("we make the simplifying assumption that the network latency between any
// two sites ... is the same"). Two relaxations:
//   * jitter  — every message takes latency + U[0, jitter];
//   * spread  — clients sit at different distances from the server, so
//     client-to-client migration may cross the whole diameter.
// Question: does heterogeneity erode g-2PL's advantage (its hand-offs are
// client-to-client, while s-2PL always routes through the server)?

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"variation", "value", "s-2PL resp", "g-2PL resp",
                        "improv%"});
  Grid grid(options);
  struct Row {
    std::string variation, value;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  auto add_point = [&](const char* variation, const std::string& value,
                       SimTime jitter, double spread) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = 0.6;
    config.latency_jitter = jitter;
    config.latency_spread = spread;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({variation, value, s2pl, grid.Add(config)});
  };
  add_point("baseline", "0", 0, 0.0);
  for (SimTime jitter : {50, 125, 250}) {
    add_point("jitter", std::to_string(jitter), jitter, 0.0);
  }
  for (double spread : {0.25, 0.5, 1.0}) {
    add_point("spread", harness::Fmt(spread, 2), 0, spread);
  }
  add_point("both", "jitter 125 + spread 0.5", 125, 0.5);
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({row.variation, row.value,
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean),
                      1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A9: latency heterogeneity sensitivity (pr = 0.6, s-WAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
