// Extension A9: sensitivity to the paper's uniform-latency assumption
// ("we make the simplifying assumption that the network latency between any
// two sites ... is the same"). Two relaxations:
//   * jitter  — every message takes latency + U[0, jitter];
//   * spread  — clients sit at different distances from the server, so
//     client-to-client migration may cross the whole diameter.
// Question: does heterogeneity erode g-2PL's advantage (its hand-offs are
// client-to-client, while s-2PL always routes through the server)?

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"variation", "value", "s-2PL resp", "g-2PL resp",
                        "improv%"});
  auto run_point = [&](const char* variation, const std::string& value,
                       SimTime jitter, double spread) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = 0.6;
    config.latency_jitter = jitter;
    config.latency_spread = spread;
    config.protocol = proto::Protocol::kS2pl;
    const harness::PointResult s2pl =
        harness::RunReplicated(config, options.scale.runs);
    config.protocol = proto::Protocol::kG2pl;
    const harness::PointResult g2pl =
        harness::RunReplicated(config, options.scale.runs);
    table.AddRow({variation, value, harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean),
                      1)});
  };
  run_point("baseline", "0", 0, 0.0);
  for (SimTime jitter : {50, 125, 250}) {
    run_point("jitter", std::to_string(jitter), jitter, 0.0);
  }
  for (double spread : {0.25, 0.5, 1.0}) {
    run_point("spread", harness::Fmt(spread, 2), 0, spread);
  }
  run_point("both", "jitter 125 + spread 0.5", 125, 0.5);
  table.Print(options.csv_path);
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A9: latency heterogeneity sensitivity (pr = 0.6, s-WAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
