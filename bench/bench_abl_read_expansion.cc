// Ablation A4 (paper §3.3 / §6): the read-only optimization — expanding a
// dispatched pure-read forward list to admit newly arriving read requests —
// which the paper proposes but does not evaluate. It removes the read
// penalty ("access requests are granted only at the end of the window
// periods") and the read-only deadlocks, at no cost to update workloads.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "g-2PL resp", "g-2PL-RO resp", "RO gain%",
                        "abort%", "RO abort%", "RO expans/commit",
                        "s-2PL resp"});
  Grid grid(options);
  struct Row {
    double pr;
    size_t plain, expanded, s2pl;
  };
  std::vector<Row> rows;
  for (double pr : {0.5, 0.75, 0.9, 1.0}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = pr;
    config.protocol = proto::Protocol::kG2pl;
    const size_t plain = grid.Add(config);
    config.g2pl.expand_read_groups = true;
    const size_t expanded = grid.Add(config);
    config.g2pl.expand_read_groups = false;
    config.protocol = proto::Protocol::kS2pl;
    rows.push_back({pr, plain, expanded, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& plain = grid.Result(row.plain);
    const harness::PointResult& expanded = grid.Result(row.expanded);
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    table.AddRow(
        {harness::Fmt(row.pr, 2), harness::Fmt(plain.response.mean, 0),
         harness::Fmt(expanded.response.mean, 0),
         harness::Fmt(
             Improvement(plain.response.mean, expanded.response.mean), 1),
         harness::Fmt(plain.abort_pct.mean, 2),
         harness::Fmt(expanded.abort_pct.mean, 2),
         harness::Fmt(expanded.expansions_per_commit, 2),
         harness::Fmt(s2pl.response.mean, 0)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Ablation A4: read-group expansion (the paper's read-only "
      "optimization), s-WAN",
      options);
  gtpl::bench::Run(options);
  return 0;
}
