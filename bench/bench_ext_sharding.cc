// Extension: sharded server group — server count x network latency for
// g-2PL and s-2PL (paper base workload, hash routing).
//
// The item space is partitioned across N simulated servers; transactions
// that touch more than one shard pay a client-coordinated two-phase commit
// (prepare + vote: two extra WAN rounds). Expected shape: with a single hot
// item pool, sharding buys no concurrency the protocols didn't already
// extract, so response time *rises* with server count at WAN latencies in
// proportion to the cross-server commit rate — quantifying the latency cost
// GeoTP-style middleware tries to hide. servers = 1 reproduces the
// single-server engines bit for bit.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

struct Row {
  proto::Protocol protocol;
  int32_t servers;
  SimTime latency;
};

void Run(const harness::CliOptions& options) {
  harness::Table table({"protocol", "servers", "latency", "resp", "abort%",
                        "xserver%", "parts", "msgs/commit", "ci%"});
  TagGrid<Row> grid(options);
  for (proto::Protocol protocol :
       {proto::Protocol::kS2pl, proto::Protocol::kG2pl}) {
    for (int32_t servers : {1, 2, 4, 8}) {
      for (SimTime latency : {1, 100, 500}) {
        proto::SimConfig config = PaperBaseConfig();
        harness::ApplyScale(options.scale, &config);
        config.protocol = protocol;
        config.latency = latency;
        config.num_servers = servers;
        grid.Add(Row{protocol, servers, latency}, config);
      }
    }
  }
  grid.Run();
  grid.Each([&table](const Row& row, const harness::PointResult& point) {
    table.AddRow({proto::ToString(row.protocol), std::to_string(row.servers),
                  std::to_string(row.latency),
                  harness::Fmt(point.response.mean, 0),
                  harness::Fmt(point.abort_pct.mean, 1),
                  harness::Fmt(point.cross_server_pct, 1),
                  harness::Fmt(point.mean_commit_participants, 2),
                  harness::Fmt(point.mean_messages_per_commit, 1),
                  harness::Fmt(100 * point.response.relative_precision, 1)});
  });
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension: sharded servers — server count x latency, 2PC commit cost",
      options);
  gtpl::bench::Run(options);
  return 0;
}
