#ifndef GTPL_BENCH_BENCH_COMMON_H_
#define GTPL_BENCH_BENCH_COMMON_H_

// Shared plumbing for the figure-reproduction bench binaries.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/cli.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "protocols/config.h"

namespace gtpl::bench {

/// The paper's Table 1 base configuration: 50 clients, 25 hot items, 1-5
/// items per transaction, think U[1,3], idle U[2,10], MPL 1.
inline proto::SimConfig PaperBaseConfig() {
  proto::SimConfig config;
  config.num_clients = 50;
  config.latency = 500;
  // A generous safety horizon so a pathological configuration reports
  // timed_out instead of running forever.
  config.max_sim_time = 60'000'000'000;
  return config;
}

/// Parses flags or exits with usage.
inline harness::CliOptions ParseOrDie(int argc, char** argv) {
  harness::CliOptions options;
  const Status status = harness::ParseCli(argc, argv, &options);
  if (!status.ok()) {
    std::exit(2);
  }
  return options;
}

/// Percentage improvement of g-2PL over s-2PL (positive = g-2PL faster).
inline double Improvement(double s2pl, double g2pl) {
  if (s2pl == 0.0) return 0.0;
  return 100.0 * (s2pl - g2pl) / s2pl;
}

}  // namespace gtpl::bench

#endif  // GTPL_BENCH_BENCH_COMMON_H_
