#ifndef GTPL_BENCH_BENCH_COMMON_H_
#define GTPL_BENCH_BENCH_COMMON_H_

// Shared plumbing for the figure-reproduction bench binaries.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "protocols/config.h"

namespace gtpl::bench {

/// Deterministic parallel driver for a bench's (config-point × replication)
/// grid. Queue every point with Add() while laying out the table, call Run()
/// once to fan the whole grid out across --jobs worker threads, then read
/// the PointResults back by the indices Add() returned. Results are
/// bit-identical at any job count; only the wall clock changes.
class Grid {
 public:
  explicit Grid(const harness::CliOptions& options) : options_(options) {}

  /// Queues one configuration point; returns its result index.
  size_t Add(const proto::SimConfig& config) {
    configs_.push_back(config);
    return configs_.size() - 1;
  }

  /// Runs every queued point (all replications) across the worker threads.
  void Run() {
    result_ = harness::RunSweep(configs_, options_.scale.runs, options_.jobs);
  }

  const harness::PointResult& Result(size_t index) const {
    return result_.points.at(index);
  }

  /// The closing "grid completed" line every bench prints after its tables.
  void PrintSummary() const {
    double slowest = 0.0;
    for (const harness::PointResult& point : result_.points) {
      slowest = std::max(slowest, point.wall_seconds);
    }
    std::printf(
        "\ngrid: %zu points x %d replications completed in %.2f s on %d "
        "thread(s)\n      (serial-equivalent %.2f s, speedup %.2fx, slowest "
        "point %.2f s)\n",
        configs_.size(), options_.scale.runs, result_.wall_seconds,
        result_.jobs,
        result_.serial_seconds,
        result_.wall_seconds > 0.0
            ? result_.serial_seconds / result_.wall_seconds
            : 0.0,
        slowest);
  }

 private:
  harness::CliOptions options_;
  std::vector<proto::SimConfig> configs_;
  harness::SweepResult result_;
};

/// Grid plus per-row sweep coordinates: most benches tag every queued point
/// with the sweep coordinates its table row needs (protocol, latency, ...),
/// run the grid, then zip tags with results. TagGrid owns that
/// tag/index/rows boilerplate so benches stop copying it.
template <typename Tag>
class TagGrid {
 public:
  explicit TagGrid(const harness::CliOptions& options) : grid_(options) {}

  /// Queues one configuration point under its row tag.
  void Add(const Tag& tag, const proto::SimConfig& config) {
    entries_.push_back(Entry{tag, grid_.Add(config)});
  }

  /// Runs every queued point across the worker threads.
  void Run() { grid_.Run(); }

  /// Calls fn(tag, point_result) for every queued point, in Add() order.
  template <typename Fn>
  void Each(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      fn(entry.tag, grid_.Result(entry.index));
    }
  }

  void PrintSummary() const { grid_.PrintSummary(); }

 private:
  struct Entry {
    Tag tag;
    size_t index;
  };

  Grid grid_;
  std::vector<Entry> entries_;
};

/// The paper's Table 1 base configuration: 50 clients, 25 hot items, 1-5
/// items per transaction, think U[1,3], idle U[2,10], MPL 1.
inline proto::SimConfig PaperBaseConfig() {
  proto::SimConfig config;
  config.num_clients = 50;
  config.latency = 500;
  // A generous safety horizon so a pathological configuration reports
  // timed_out instead of running forever.
  config.max_sim_time = 60'000'000'000;
  return config;
}

/// Parses flags or exits with usage.
inline harness::CliOptions ParseOrDie(int argc, char** argv) {
  harness::CliOptions options;
  const Status status = harness::ParseCli(argc, argv, &options);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], status.message().c_str());
    std::exit(2);
  }
  return options;
}

/// Percentage improvement of g-2PL over s-2PL (positive = g-2PL faster).
inline double Improvement(double s2pl, double g2pl) {
  if (s2pl == 0.0) return 0.0;
  return 100.0 * (s2pl - g2pl) / s2pl;
}

}  // namespace gtpl::bench

#endif  // GTPL_BENCH_BENCH_COMMON_H_
