// Figure 11: percentage of transactions aborted versus the collection-window
// size, controlled through the forward-list length cap, in a read-only
// single-segment LAN (pr = 1.0, latency 1, 50 clients, 25 items).
//
// Paper shape: a large collection window lets the server reorder more
// requests and cuts the deadlock probability — the aborted fraction falls
// monotonically as the cap grows and saturates once the cap stops binding.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"fl-cap", "g-2PL abort%", "g-2PL resp",
                        "mean FL length"});
  Grid grid(options);
  const std::vector<int32_t> caps = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0};
  for (int32_t cap : caps) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 1;
    config.workload.read_prob = 1.0;
    config.protocol = proto::Protocol::kG2pl;
    config.g2pl.max_forward_list_length = cap;
    grid.Add(config);
  }
  grid.Run();
  for (size_t i = 0; i < caps.size(); ++i) {
    const harness::PointResult& point = grid.Result(i);
    table.AddRow({caps[i] == 0 ? "inf" : std::to_string(caps[i]),
                  harness::Fmt(point.abort_pct.mean, 2),
                  harness::Fmt(point.response.mean, 1),
                  harness::Fmt(point.fl_length.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figure 11: aborted transactions vs forward-list length cap "
      "(pr = 1.0, ss-LAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
