// A18 — Extension: sticky client lock leases (DESIGN.md §14). The headline
// grid sweeps lease mode x contention (zipf skew) x WAN latency x the
// repeat-access fraction of the workload over a lock-table engine, so the
// table shows exactly when callback-revoked lease caching pays:
//
//  - At high skew *and* a high repeat fraction, hot items park at their
//    last client and repeat acquisitions are local hits (hits/c climbs
//    past 1), collapsing the op-wait p50 from ~2 RTT to near zero while
//    the contended tail still pays revoke round-trips.
//  - At low repeat fractions the cache rarely re-serves an entry before a
//    conflicting site claims it: every miss now costs revoke + re-grant
//    WAN rounds instead of one grant, and sticky loses outright — the
//    classic callback-caching trade (CSIM leases / YFS lock caching).
//  - Latency scales both effects: hits save more the longer the RTT, and
//    revokes cost more, so the crossover sits at the repeat fraction, not
//    at the RTT.
//
// The second table is the revoke-storm ablation: shrink the item universe
// at maximal skew so every grant lands on somebody else's cached lease.
// revokes/commit approaches hits/commit and the sticky column's advantage
// drains away — the storm regime the TTL and max-held knobs exist to tame.

#include <string>

#include "bench_common.h"
#include "cc/registry.h"
#include "lease/lease.h"

namespace gtpl::bench {
namespace {

struct Row {
  lease::LeaseMode mode;
  double zipf;
  SimTime latency;
  double repeat;
  int32_t items;
};

const char* ModeName(lease::LeaseMode mode) {
  return mode == lease::LeaseMode::kSticky ? "sticky" : "none";
}

/// Lock engine under test: --cc if given (must accept the lease layer),
/// s-2PL otherwise.
const cc::EngineInfo* SelectedEngine(const harness::CliOptions& options) {
  const std::string name = options.cc.empty() ? "s2pl" : options.cc;
  const cc::EngineInfo* info = cc::FindEngine(name);
  if (info == nullptr) {
    std::fprintf(stderr, "--cc=%s is not a registered engine\n", name.c_str());
    std::exit(2);
  }
  return info;
}

/// Lease modes to sweep: the --lease mode alone if the flag was given,
/// otherwise both (none is the baseline column of every comparison).
std::vector<lease::LeaseMode> SelectedModes(const harness::CliOptions& options) {
  if (!options.lease.empty()) return {options.lease_options.mode};
  return {lease::LeaseMode::kNone, lease::LeaseMode::kSticky};
}

proto::SimConfig LeaseBaseConfig(const harness::CliOptions& options,
                                 const cc::EngineInfo& engine) {
  proto::SimConfig config = PaperBaseConfig();
  harness::ApplyScale(options.scale, &config);
  config.protocol = engine.protocol;
  config.num_clients = 20;
  config.workload.num_items = 128;
  config.workload.read_prob = 0.5;
  return config;
}

void ApplyLease(const harness::CliOptions& options, lease::LeaseMode mode,
                proto::SimConfig* config) {
  config->lease = options.lease_options;  // ttl / max_held pass through
  config->lease.mode = mode;
  const Status status = config->Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "config rejected: %s\n", status.message().c_str());
    std::exit(2);
  }
}

void AddLeaseRow(harness::Table& table, const Row& row,
                 const harness::PointResult& point) {
  table.AddRow({ModeName(row.mode), harness::Fmt(row.zipf, 2),
                std::to_string(row.latency), harness::Fmt(row.repeat, 1),
                std::to_string(row.items),
                harness::Fmt(point.response.mean, 0),
                harness::Fmt(point.op_wait_p50, 0),
                harness::Fmt(point.abort_pct.mean, 1),
                harness::Fmt(point.lease_hits_per_commit, 2),
                harness::Fmt(point.lease_revokes_per_commit, 2),
                harness::Fmt(point.lease_releases_per_commit, 2),
                harness::Fmt(point.mean_lease_revoke_wait, 1),
                harness::Fmt(100 * point.response.relative_precision, 1)});
}

void Run(const harness::CliOptions& options) {
  const cc::EngineInfo* engine = SelectedEngine(options);
  const std::vector<lease::LeaseMode> modes = SelectedModes(options);
  const std::vector<std::string> columns = {
      "lease", "zipf",  "latency", "repeat", "items",   "resp",    "opw p50",
      "abort%", "hit/c", "rvk/c",  "rel/c",  "rvkwait", "ci%"};

  harness::Table headline(columns);
  TagGrid<Row> grid(options);
  for (const lease::LeaseMode mode : modes) {
    for (double zipf : {0.5, 0.9}) {
      for (SimTime latency : {100, 500, 1000}) {
        for (double repeat : {0.5, 0.9}) {
          proto::SimConfig config = LeaseBaseConfig(options, *engine);
          config.latency = latency;
          config.workload.zipf_theta = zipf;
          config.workload.repeat_prob = repeat;
          ApplyLease(options, mode, &config);
          grid.Add(Row{mode, zipf, latency, repeat,
                       config.workload.num_items},
                   config);
        }
      }
    }
  }
  grid.Run();
  grid.Each([&headline](const Row& row, const harness::PointResult& point) {
    AddLeaseRow(headline, row, point);
  });
  std::printf("sticky leases (%s): mode x contention x latency x repeat "
              "fraction\n",
              engine->name);
  headline.Print(options.csv_path);
  grid.PrintSummary();

  harness::Table storm(columns);
  TagGrid<Row> ablation(options);
  for (const lease::LeaseMode mode : modes) {
    for (int32_t items : {16, 64, 256}) {
      proto::SimConfig config = LeaseBaseConfig(options, *engine);
      config.latency = 500;
      config.workload.num_items = items;
      config.workload.zipf_theta = 0.95;
      config.workload.repeat_prob = 0.9;
      ApplyLease(options, mode, &config);
      ablation.Add(Row{mode, 0.95, 500, 0.9, items}, config);
    }
  }
  ablation.Run();
  ablation.Each([&storm](const Row& row, const harness::PointResult& point) {
    AddLeaseRow(storm, row, point);
  });
  std::printf("\nrevoke-storm ablation (zipf 0.95, repeat 0.9, latency 500): "
              "shrinking the item\nuniverse turns every grant into a "
              "callback — revokes/commit chases hits/commit\nand the sticky "
              "advantage drains\n");
  storm.Print();
  ablation.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "A18 extension: sticky client lock leases — mode x skew x latency x "
      "repeat fraction",
      options);
  gtpl::bench::Run(options);
  return 0;
}
