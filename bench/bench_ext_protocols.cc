// Extension A5 (paper §1 / §6): comparison against the client-caching
// protocol families the paper names — caching 2PL (c-2PL), callback locking
// (CBL) and optimistic 2PL (O2PL) — across the latency range at a moderate
// read mix, the comparison the paper defers to future work.
//
// Expected qualitative outcome in a latency-dominated WAN: c-2PL tracks
// s-2PL (data caching saves bytes, not rounds); CBL benefits from read
// permission caching on cache hits; O2PL trades rounds for certification
// aborts and wins only while contention stays moderate.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  const proto::Protocol kProtocols[] = {
      proto::Protocol::kS2pl, proto::Protocol::kG2pl, proto::Protocol::kC2pl,
      proto::Protocol::kCbl, proto::Protocol::kO2pl};
  harness::Table table({"latency", "protocol", "resp", "abort%",
                        "msgs/commit", "payload/commit"});
  Grid grid(options);
  struct Row {
    SimTime latency;
    proto::Protocol protocol;
    size_t point;
  };
  std::vector<Row> rows;
  for (SimTime latency : {1, 100, 500}) {
    for (proto::Protocol protocol : kProtocols) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = latency;
      config.workload.read_prob = 0.6;
      config.protocol = protocol;
      rows.push_back({latency, protocol, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& point = grid.Result(row.point);
    table.AddRow({std::to_string(row.latency), proto::ToString(row.protocol),
                  harness::Fmt(point.response.mean, 0),
                  harness::Fmt(point.abort_pct.mean, 2),
                  harness::Fmt(point.mean_messages_per_commit, 1),
                  harness::Fmt(point.mean_payload_per_commit, 1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A5: protocol family comparison (pr = 0.6)", options);
  gtpl::bench::Run(options);
  return 0;
}
