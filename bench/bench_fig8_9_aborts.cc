// Figures 8-9: percentage of transactions aborted in g-2PL and s-2PL versus
// the network latency, for read probabilities 0.6 and 0.8 (50 clients, 25
// hot items).
//
// Paper shape: abort percentages of the two protocols are fairly close and
// roughly constant across latencies above the single-segment-LAN point;
// aborts decrease as the read probability grows.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table(
      {"pr", "latency", "s-2PL abort%", "g-2PL abort%", "s-2PL resp",
       "g-2PL resp"});
  Grid grid(options);
  struct Row {
    double pr;
    SimTime latency;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (double pr : {0.6, 0.8}) {
    for (SimTime latency : {1, 50, 100, 250, 500, 750}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = latency;
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({pr, latency, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.pr, 1), std::to_string(row.latency),
                  harness::Fmt(s2pl.abort_pct.mean, 2),
                  harness::Fmt(g2pl.abort_pct.mean, 2),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figures 8-9: percentage of transactions aborted vs network latency "
      "(pr = 0.6 / 0.8)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
