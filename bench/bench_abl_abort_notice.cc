// Ablation A7: the abort-notice model. By default abort decisions take
// effect at the victim instantly, matching the paper's round accounting
// (which has no abort messages) and the only regime in which its reported
// g-2PL gains are reachable at ~40-55% abort rates. Charging one network
// latency for the notice (instant_abort_notice = false) barely moves s-2PL
// (locks live at the server and free at decision time) but compounds along
// every g-2PL wait chain, because a victim's held data items cannot start
// migrating until its client learns of the abort.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "notice", "s-2PL resp", "g-2PL resp",
                        "improv%"});
  Grid grid(options);
  struct Row {
    double pr;
    bool instant;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (double pr : {0.0, 0.25, 0.6}) {
    for (bool instant : {true, false}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = 500;
      config.workload.read_prob = pr;
      config.instant_abort_notice = instant;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({pr, instant, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow(
        {harness::Fmt(row.pr, 2), row.instant ? "instant" : "one-latency",
         harness::Fmt(s2pl.response.mean, 0),
         harness::Fmt(g2pl.response.mean, 0),
         harness::Fmt(Improvement(s2pl.response.mean, g2pl.response.mean),
                      1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Ablation A7: abort-notice latency model (s-WAN)", options);
  gtpl::bench::Run(options);
  return 0;
}
