// Tables 1 & 2 of the paper: simulation parameters and the simulated
// networking environments. This bench prints the defaults the other bench
// binaries run with, so the reproduction setup is auditable.

#include <cstdio>

#include "harness/table.h"
#include "net/latency_model.h"
#include "protocols/config.h"

namespace gtpl {
namespace {

void PrintTable1() {
  const proto::SimConfig config;
  harness::Table table({"Parameter", "Value"});
  table.AddRow({"Number of servers", "1"});
  table.AddRow({"Number of clients", "varying (default 50)"});
  table.AddRow({"Number of hot data items",
                std::to_string(config.workload.num_items)});
  table.AddRow({"Transaction execution pattern", "Sequential"});
  table.AddRow({"Data items accessed per transaction",
                std::to_string(config.workload.min_items_per_txn) + " - " +
                    std::to_string(config.workload.max_items_per_txn) +
                    " (uniform, distinct)"});
  table.AddRow({"Percentage of read accesses", "0.00 - 1.00"});
  table.AddRow({"Network latency", "1 - 750 time units (Table 2)"});
  table.AddRow({"Computation time per operation",
                std::to_string(config.workload.min_think) + " - " +
                    std::to_string(config.workload.max_think) +
                    " time units"});
  table.AddRow({"Idle time between transactions",
                std::to_string(config.workload.min_idle) + " - " +
                    std::to_string(config.workload.max_idle) +
                    " time units"});
  table.AddRow({"Multiprogramming level at clients", "1"});
  std::printf("Table 1: simulation parameters\n");
  table.Print();
}

void PrintTable2() {
  harness::Table table({"Network type", "Abbrev.", "Latency (time units)"});
  for (const net::NetworkEnvironment& env : net::PaperEnvironments()) {
    table.AddRow({env.name, env.abbreviation, std::to_string(env.latency)});
  }
  std::printf("\nTable 2: networking environments simulated\n");
  table.Print();
}

}  // namespace
}  // namespace gtpl

int main() {
  gtpl::PrintTable1();
  gtpl::PrintTable2();
  std::printf(
      "\nTime-unit conversion: with 1 unit = 0.5 ms the latencies span "
      "0.5 ms (ss-LAN) to 375 ms (l-WAN), realistic up to satellite WANs.\n");
  return 0;
}
