// Figure 1 / §3.2 worked example: three clients, one hot item, exclusive
// access, requests landing in the same collection window. The paper counts
// 12 time units for g-2PL against 15 for s-2PL (a 20% reduction) with a
// 2-unit latency and 1-unit processing time.
//
// This bench reproduces the *mechanism* — the fused release+grant removes
// one network hop per hand-off — and reports completion time, message count
// and mean response for both protocols, plus a sweep over the number of
// queued clients showing the saving grow with the forward-list length.

#include "bench_common.h"
#include "exec/parallel.h"

namespace gtpl::bench {
namespace {

proto::SimConfig ExampleConfig(proto::Protocol protocol, int32_t clients) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = clients;
  config.latency = 2;
  config.workload.num_items = 1;
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 1;
  config.workload.read_prob = 0.0;
  config.workload.min_think = 1;
  config.workload.max_think = 1;
  config.workload.min_idle = 1000;  // one transaction per client
  config.workload.max_idle = 1000;
  config.measured_txns = clients;
  config.warmup_txns = 0;
  config.seed = 7;
  config.max_sim_time = 1'000'000;
  return config;
}

void Run(const harness::CliOptions& options) {
  harness::Table table({"clients", "s-2PL span", "g-2PL span", "reduction%",
                        "s-2PL msgs", "g-2PL msgs"});
  const std::vector<int32_t> kClients = {2, 3, 5, 10, 20};
  std::vector<proto::SimConfig> configs;
  for (int32_t clients : kClients) {
    configs.push_back(ExampleConfig(proto::Protocol::kS2pl, clients));
    configs.push_back(ExampleConfig(proto::Protocol::kG2pl, clients));
  }
  exec::ThreadPool pool(exec::ResolveJobs(options.jobs));
  const std::vector<proto::RunResult> results = exec::ParallelMap(
      pool, configs,
      [](const proto::SimConfig& config) {
        return proto::RunSimulation(config);
      });
  for (size_t i = 0; i < kClients.size(); ++i) {
    SimTime span[2];
    uint64_t msgs[2];
    for (int j = 0; j < 2; ++j) {
      const proto::RunResult& result = results[2 * i + j];
      // All clients start at t=1000; the span is when the last transaction
      // completed its processing (max response).
      span[j] = static_cast<SimTime>(result.response.max());
      msgs[j] = result.network.messages;
    }
    table.AddRow({std::to_string(kClients[i]), std::to_string(span[0]),
                  std::to_string(span[1]),
                  harness::Fmt(Improvement(static_cast<double>(span[0]),
                                           static_cast<double>(span[1])),
                               1),
                  std::to_string(msgs[0]), std::to_string(msgs[1])});
  }
  table.Print();
  std::printf(
      "\nPaper (3 clients): 12 units (g-2PL) vs 15 units (s-2PL), 20%% "
      "reduction.\nThe hand-off saving is L per queued client; with 2-unit "
      "latency and\n1-unit processing the asymptotic reduction is 2/5 = "
      "40%% per hand-off.\n");
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figure 1 / §3.2 example: grouped hand-offs on one hot item", options);
  gtpl::bench::Run(options);
  return 0;
}
