// Extension A20: observability overhead — wall-clock cost of the trace
// pipeline (off / buffered / streamed) and of time-series metrics sampling,
// with the byte-identity and non-perturbation contracts checked on every
// row (DESIGN.md §16).
//
// Each row reruns the SAME simulation (same seed) with a different
// observability mode. The "key" determinism check asserts that every mode
// reproduces the baseline's protocol results exactly — tracing and metrics
// are observation-only. The streamed rows additionally require the on-disk
// file to be byte-identical to the buffered export, and report the peak
// chunk-buffer occupancy against the flush watermark (the bounded-memory
// claim, measured rather than asserted).
//
// Like A19, the wall s / overhead% columns are wall-clock measurements and
// vary across hosts; every other column is deterministic.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "common/check.h"
#include "obs/export.h"
#include "protocols/engine.h"
#include "protocols/parsim.h"

namespace gtpl::bench {
namespace {

/// The protocol results every observability mode must reproduce exactly.
std::string ResultKey(const proto::RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%lld/%lld/%lld/%lld/%a/%a/%llu/%lld",
                static_cast<long long>(r.commits),
                static_cast<long long>(r.aborts),
                static_cast<long long>(r.total_commits),
                static_cast<long long>(r.total_aborts), r.response.mean(),
                r.span_lock_wait.mean(),
                static_cast<unsigned long long>(r.network.messages),
                static_cast<long long>(r.end_time));
  return buf;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GTPL_CHECK(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Row {
  std::string mode;
  double seconds = 0.0;
  int64_t trace_bytes = 0;
  int64_t peak_buffer = 0;
  std::string key;
};

template <typename RunFn>
Row TimeOne(const std::string& mode, const proto::SimConfig& config,
            RunFn run) {
  const auto started = std::chrono::steady_clock::now();
  const proto::RunResult result = run(config);
  Row row;
  row.mode = mode;
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  row.key = ResultKey(result);
  GTPL_CHECK(!result.timed_out);
  if (!result.obs_trace.empty()) {
    row.trace_bytes = static_cast<int64_t>(ToJsonl(result.obs_trace).size());
  } else {
    row.trace_bytes = result.trace_stream_bytes;
    row.peak_buffer = result.trace_peak_buffer;
  }
  return row;
}

template <typename RunFn>
void RunEngine(const char* engine_name, const proto::SimConfig& base,
               RunFn run, harness::Table* table) {
  const std::string stream_path =
      std::string("/tmp/gtpl_bench_obs_") + engine_name + ".jsonl";

  // Baseline: observability fully off.
  const Row off = TimeOne("off", base, run);

  // Buffered: in-memory trace, exported post-hoc.
  proto::SimConfig buffered_config = base;
  buffered_config.obs_trace = true;
  std::string buffered_jsonl;
  const Row buffered =
      TimeOne("buffered", buffered_config,
              [&run, &buffered_jsonl](const proto::SimConfig& config) {
                proto::RunResult result = run(config);
                buffered_jsonl = obs::ToJsonl(result.obs_trace);
                return result;
              });

  // Streamed at two watermarks: default 1 MiB and a tight 64 KiB chunk.
  std::vector<Row> rows = {off, buffered};
  for (const int64_t watermark : {int64_t{1} << 20, int64_t{64} << 10}) {
    proto::SimConfig streamed_config = base;
    streamed_config.obs_trace = true;
    streamed_config.trace_stream_path = stream_path;
    streamed_config.trace_flush_bytes = watermark;
    Row streamed = TimeOne(
        "stream " + std::to_string(watermark >> 10) + "KiB", streamed_config,
        run);
    // The acceptance contract: streamed bytes == buffered bytes, and the
    // chunk buffer never outgrew the watermark.
    GTPL_CHECK(ReadFile(stream_path) == buffered_jsonl)
        << engine_name << ": streamed trace diverged from buffered export";
    GTPL_CHECK_LE(streamed.peak_buffer, watermark);
    rows.push_back(streamed);
  }

  // Metrics sampling on top of the off baseline.
  proto::SimConfig metrics_config = base;
  metrics_config.metrics_interval = 50'000;
  rows.push_back(TimeOne("metrics", metrics_config, run));

  for (const Row& row : rows) {
    GTPL_CHECK(row.key == off.key)
        << engine_name << " mode " << row.mode
        << ": observability perturbed the run";
    table->AddRow(
        {engine_name, row.mode, harness::Fmt(row.seconds, 2),
         harness::Fmt(off.seconds > 0.0
                          ? 100.0 * (row.seconds - off.seconds) / off.seconds
                          : 0.0,
                      1),
         row.trace_bytes > 0
             ? harness::Fmt(static_cast<double>(row.trace_bytes) / 1e6, 1)
             : std::string("-"),
         row.peak_buffer > 0
             ? harness::Fmt(static_cast<double>(row.peak_buffer) / 1024.0, 1)
             : std::string("-")});
  }
}

void Run(const harness::CliOptions& options) {
  // A mid-size sharded workload: big enough that the trace stream reaches
  // tens of MB (the regime the bounded-memory sink exists for), small
  // enough to keep the full mode grid in seconds.
  proto::SimConfig config;
  config.protocol = proto::Protocol::kNoWait;
  config.num_clients = 128;
  config.num_servers = 8;
  config.latency = 100;
  config.workload.num_items = 2048;
  config.workload.read_prob = 0.8;
  config.instant_abort_notice = false;
  config.max_sim_time = 60'000'000'000;
  harness::ApplyScale(options.scale, &config);

  harness::Table table(
      {"engine", "mode", "wall s", "overhead%", "trace MB", "peak buf KiB"});
  RunEngine("serial", config,
            [](const proto::SimConfig& c) { return proto::RunSimulation(c); },
            &table);
  proto::SimConfig parallel = config;
  parallel.sim_threads = 4;
  RunEngine("parallel", parallel,
            [](const proto::SimConfig& c) {
              return proto::RunParallelSimulation(c);
            },
            &table);
  table.Print(options.csv_path);
  std::printf(
      "\nbyte-identity (streamed == buffered) and non-perturbation "
      "(all modes == off) checked on every row: OK\n");
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A20: observability overhead — trace pipeline and metrics",
      options);
  gtpl::bench::Run(options);
  return 0;
}
