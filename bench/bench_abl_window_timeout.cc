// Ablation A1 (paper §3.2 footnote 1): "tuning the collection window does
// not produce significant performance gains". The collection window is
// controlled through the forward-list length cap; this bench sweeps it on an
// update-heavy WAN workload and shows the flat region once the cap stops
// binding — tuning buys nothing, while an aggressively small window hurts
// (it throws away both grouping and reordering freedom).

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "fl-cap", "g-2PL resp", "abort%",
                        "mean FL length"});
  Grid grid(options);
  struct Row {
    double pr;
    int32_t cap;
    size_t point;
  };
  std::vector<Row> rows;
  for (double pr : {0.25, 0.6}) {
    for (int32_t cap : {1, 2, 3, 5, 8, 12, 20, 0}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = 500;
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kG2pl;
      config.g2pl.max_forward_list_length = cap;
      rows.push_back({pr, cap, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& point = grid.Result(row.point);
    table.AddRow({harness::Fmt(row.pr, 2),
                  row.cap == 0 ? "inf" : std::to_string(row.cap),
                  harness::Fmt(point.response.mean, 0),
                  harness::Fmt(point.abort_pct.mean, 2),
                  harness::Fmt(point.fl_length.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Ablation A1: collection-window (forward-list cap) tuning, s-WAN",
      options);
  gtpl::bench::Run(options);
  return 0;
}
