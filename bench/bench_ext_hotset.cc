// Extension A11: hot-set size. The paper keeps M = 25 items "purposely
// small to emulate hot data access". Sweeping M at fixed load shows how the
// g-2PL advantage tracks per-item contention (and forward-list length),
// directly probing the paper's closing claim that g-2PL "is particularly
// suited to control access to hot data items".

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"hot items", "s-2PL resp", "g-2PL resp", "improv%",
                        "g-2PL FL len", "s-2PL abort%", "g-2PL abort%"});
  Grid grid(options);
  struct Row {
    int32_t items;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (int32_t items : {5, 10, 25, 50, 100, 200}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = 0.6;
    config.workload.num_items = items;
    config.workload.max_items_per_txn = std::min(5, items);
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({items, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow(
        {std::to_string(row.items), harness::Fmt(s2pl.response.mean, 0),
         harness::Fmt(g2pl.response.mean, 0),
         harness::Fmt(Improvement(s2pl.response.mean, g2pl.response.mean),
                      1),
         harness::Fmt(g2pl.fl_length.mean, 2),
         harness::Fmt(s2pl.abort_pct.mean, 2),
         harness::Fmt(g2pl.abort_pct.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A11: hot-set size sweep (pr = 0.6, s-WAN, 50 clients)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
