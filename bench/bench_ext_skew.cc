// Extension A8: access skew. The paper's hypothesis — "the more a certain
// data item is requested[,] ... more is the performance gain, since the
// grouping effect is emphasized when the forward list is longer" — tested
// directly by sweeping Zipf skew over the hot pool (theta = 0 is the
// paper's uniform access).

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"zipf theta", "s-2PL resp", "g-2PL resp", "improv%",
                        "g-2PL FL len"});
  Grid grid(options);
  struct Row {
    double theta;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (double theta : {0.0, 0.5, 0.9, 1.2, 1.5}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 500;
    config.workload.read_prob = 0.6;
    config.workload.zipf_theta = theta;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({theta, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.theta, 1),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean),
                      1),
                  harness::Fmt(g2pl.fl_length.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A8: access skew (Zipf) and the grouping effect "
      "(pr = 0.6, s-WAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
