// Figure 10: percentage of transactions aborted as a function of network
// latency in a *read-only* system (pr = 1.0). All aborts here are the
// read-only deadlocks of paper §3.3 (read dependencies formed across
// different collection windows); s-2PL aborts nothing in a read-only system
// (shared locks never conflict), which the bench asserts as a baseline row.
//
// Paper shape: read-deadlock aborts are largest at tiny latencies and
// decrease as the latency grows. Our reproduction preserves the existence
// and the cause of these aborts, and that the paper's proposed read-group
// expansion (the g-2PL-RO column, future work in the paper) eliminates them
// entirely; the absolute level is higher than the paper's (see
// EXPERIMENTS.md for the discussion).

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"latency", "g-2PL abort%", "g-2PL-RO abort%",
                        "s-2PL abort%", "g-2PL expansions/commit"});
  Grid grid(options);
  struct Row {
    SimTime latency;
    size_t g2pl, g2pl_ro, s2pl;
  };
  std::vector<Row> rows;
  for (SimTime latency : {1, 2, 3, 4, 5, 7, 9, 11}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = latency;
    config.workload.read_prob = 1.0;

    config.protocol = proto::Protocol::kG2pl;
    const size_t g2pl = grid.Add(config);

    config.g2pl.expand_read_groups = true;
    const size_t g2pl_ro = grid.Add(config);
    config.g2pl.expand_read_groups = false;

    config.protocol = proto::Protocol::kS2pl;
    rows.push_back({latency, g2pl, g2pl_ro, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    table.AddRow({std::to_string(row.latency),
                  harness::Fmt(grid.Result(row.g2pl).abort_pct.mean, 2),
                  harness::Fmt(grid.Result(row.g2pl_ro).abort_pct.mean, 2),
                  harness::Fmt(grid.Result(row.s2pl).abort_pct.mean, 2),
                  harness::Fmt(
                      grid.Result(row.g2pl_ro).expansions_per_commit, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figure 10: read-only deadlock aborts vs network latency (pr = 1.0)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
