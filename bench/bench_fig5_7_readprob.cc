// Figures 5-7: mean transaction response time of g-2PL and s-2PL versus the
// read probability, in an ss-LAN (latency 1), a MAN (latency 250) and an
// l-WAN (latency 750) environment (50 clients, 25 hot items).
//
// Paper shape: at low read probabilities g-2PL wins by grouping; a
// performance cross-over appears at high pr; the cross-over point sits
// around pr = 0.85 for latency 1 and shifts right as latency grows, so in
// WANs g-2PL is superior over almost the whole range.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"latency", "pr", "s-2PL resp", "g-2PL resp",
                        "improv%"});
  double crossover[3] = {-1.0, -1.0, -1.0};
  const SimTime kLatencies[3] = {1, 250, 750};
  Grid grid(options);
  struct Row {
    int env;
    double pr;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (int env = 0; env < 3; ++env) {
    for (double pr = 0.0; pr <= 1.001; pr += 0.1) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = kLatencies[env];
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({env, pr, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  double previous_improvement = 0.0;
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    const double improvement =
        Improvement(s2pl.response.mean, g2pl.response.mean);
    if (crossover[row.env] < 0 && improvement < 0 && row.pr > 0) {
      // Linear interpolation of the zero crossing.
      crossover[row.env] =
          row.pr - 0.1 * (0.0 - improvement) /
                       (previous_improvement - improvement);
    }
    previous_improvement = improvement;
    table.AddRow({std::to_string(kLatencies[row.env]),
                  harness::Fmt(row.pr, 1),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(improvement, 1)});
  }
  table.Print(options.csv_path);
  for (int env = 0; env < 3; ++env) {
    if (crossover[env] >= 0) {
      std::printf("cross-over at latency %lld: pr ~ %.2f\n",
                  static_cast<long long>(kLatencies[env]), crossover[env]);
    } else {
      std::printf("cross-over at latency %lld: none in [0,1]\n",
                  static_cast<long long>(kLatencies[env]));
    }
  }
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figures 5-7: mean response time vs read probability "
      "(ss-LAN / MAN / l-WAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
