// Extension A14: adaptive collection windows — the per-item AIMD cap
// controller versus static forward-list caps, across a contention sweep
// (Zipf skew, then client scaling) in a write-heavy aged workload.
//
// With aging on, the static cap is a genuine tradeoff: an aged requester
// aborts every opposing window member, so a long window on a hot item is
// a large abort blast radius — abort%% *rises* with the cap — while a
// short window forfeits batching and response time falls as the cap
// grows. A single static value can only pick one end. The controller
// sets the cap per item from live abort feedback: a deadlock-avoidance
// rejection or aging abort attributed to an item shrinks its cap
// multiplicatively; windows that complete cleanly grow it back additively
// after a hysteresis interval. Hot items settle short, cold items stay
// long: at high skew the adaptive run beats the abort-optimal static cap
// (cap 1) on *both* axes — lower abort%% and lower response — and the
// telemetry columns show the mean effective cap settling between the
// static extremes.

#include "bench_common.h"

namespace gtpl::bench {
namespace {

// 0 = unbounded static cap; -1 marks the adaptive row.
constexpr int32_t kAdaptive = -1;
const std::vector<int32_t> kCaps = {1, 2, 3, 5, 10, 0, kAdaptive};

proto::SimConfig WithCap(proto::SimConfig config, int32_t cap) {
  if (cap == kAdaptive) {
    config.g2pl.max_forward_list_length = 0;
    config.g2pl.adaptive.enabled = true;
  } else {
    config.g2pl.max_forward_list_length = cap;
  }
  return config;
}

std::string CapName(int32_t cap) {
  if (cap == kAdaptive) return "adaptive";
  if (cap == 0) return "inf";
  return std::to_string(cap);
}

void AddRow(harness::Table* table, const std::string& point_label,
            int32_t cap, const harness::PointResult& point) {
  const bool adaptive = cap == kAdaptive;
  table->AddRow({point_label, CapName(cap),
                 harness::Fmt(point.abort_pct.mean, 2),
                 harness::Fmt(point.response.mean, 0),
                 harness::Fmt(point.fl_length.mean, 2),
                 adaptive ? harness::Fmt(point.mean_effective_cap, 2) : "-",
                 adaptive ? harness::Fmt(point.final_effective_cap, 2) : "-",
                 adaptive ? harness::Fmt(point.mean_cap_increases, 0) : "-",
                 adaptive ? harness::Fmt(point.mean_cap_decreases, 0) : "-"});
}

/// The write-heavy aged base point where the cap tradeoff is live.
proto::SimConfig AgedBaseConfig(const harness::CliOptions& options) {
  proto::SimConfig config = PaperBaseConfig();
  harness::ApplyScale(options.scale, &config);
  config.protocol = proto::Protocol::kG2pl;
  config.workload.read_prob = 0.2;
  config.g2pl.aging_threshold = 2;
  return config;
}

void RunSkewGrid(const harness::CliOptions& options) {
  std::printf(
      "\n-- Zipf skew x cap (50 clients, latency 500, pr 0.2, aging 2) --\n");
  harness::Table table({"zipf", "cap", "abort%", "resp", "mean FL",
                        "eff-cap", "final-cap", "grows", "shrinks"});
  Grid grid(options);
  struct Row {
    double zipf;
    int32_t cap;
    size_t index;
  };
  std::vector<Row> rows;
  for (double zipf : {0.0, 0.6, 1.1, 1.3}) {
    for (int32_t cap : kCaps) {
      proto::SimConfig config = AgedBaseConfig(options);
      config.workload.zipf_theta = zipf;
      rows.push_back({zipf, cap, grid.Add(WithCap(config, cap))});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    AddRow(&table, harness::Fmt(row.zipf, 1), row.cap, grid.Result(row.index));
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

void RunClientGrid(const harness::CliOptions& options) {
  std::printf(
      "\n-- client scaling x cap (zipf 1.1, latency 500, pr 0.2, aging 2) "
      "--\n");
  harness::Table table({"clients", "cap", "abort%", "resp", "mean FL",
                        "eff-cap", "final-cap", "grows", "shrinks"});
  Grid grid(options);
  struct Row {
    int32_t clients;
    int32_t cap;
    size_t index;
  };
  std::vector<Row> rows;
  for (int32_t clients : {20, 50, 80}) {
    for (int32_t cap : kCaps) {
      proto::SimConfig config = AgedBaseConfig(options);
      config.num_clients = clients;
      config.workload.zipf_theta = 1.1;
      rows.push_back({clients, cap, grid.Add(WithCap(config, cap))});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    AddRow(&table, std::to_string(row.clients), row.cap,
           grid.Result(row.index));
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension A14: adaptive collection windows vs static forward-list "
      "caps",
      options);
  gtpl::bench::RunSkewGrid(options);
  gtpl::bench::RunClientGrid(options);
  return 0;
}
