// Figures 12-15: mean transaction response time and percentage of
// transactions aborted versus the number of clients, for read probabilities
// 0.25 and 0.75 in an s-WAN (latency 500; 25 hot items; 1-5 items/txn).
//
// Paper shape: g-2PL outperforms s-2PL at high loads for both read mixes
// (Figs 12/14); abort fractions are close, with a cross-over beyond which a
// higher fraction of transactions abort under s-2PL (Figs 13/15).

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void Run(const harness::CliOptions& options) {
  harness::Table table({"pr", "clients", "s-2PL resp", "g-2PL resp",
                        "improv%", "s-2PL abort%", "g-2PL abort%"});
  Grid grid(options);
  struct Row {
    double pr;
    int32_t clients;
    size_t s2pl, g2pl;
  };
  std::vector<Row> rows;
  for (double pr : {0.25, 0.75}) {
    for (int32_t clients : {10, 25, 50, 75, 100, 125, 150}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.num_clients = clients;
      config.latency = 500;
      config.workload.read_prob = pr;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({pr, clients, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow(
        {harness::Fmt(row.pr, 2), std::to_string(row.clients),
         harness::Fmt(s2pl.response.mean, 0),
         harness::Fmt(g2pl.response.mean, 0),
         harness::Fmt(Improvement(s2pl.response.mean, g2pl.response.mean),
                      1),
         harness::Fmt(s2pl.abort_pct.mean, 2),
         harness::Fmt(g2pl.abort_pct.mean, 2)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Figures 12-15: response time and abort% vs number of clients "
      "(pr = 0.25 / 0.75, s-WAN)",
      options);
  gtpl::bench::Run(options);
  return 0;
}
