// Extension: finite link bandwidth — bandwidth x latency for g-2PL and
// s-2PL under the link-level transport (DESIGN.md §9: transmission delay +
// per-endpoint NIC FIFO queues), plus a cross-traffic load sweep.
//
// The paper assumes message size is a non-issue at gigabit rates; this
// bench quantifies where that assumption breaks. Two regimes emerge:
//
//  * At WAN latencies finite bandwidth barely moves either protocol
//    (propagation dominates transmission) and g-2PL keeps the advantage
//    the paper measures. The centralized server NIC is also the hotspot
//    for s-2PL — every grant ships a data copy from one site — so at
//    50 clients contention there hurts s-2PL *more*, not less.
//
//  * At LAN latencies with tight bandwidth and a small client group the
//    advantage inverts: g-2PL's client-to-client migrations are
//    data-heavy (kDataPayload + forward-list riders per hop) while
//    s-2PL's extra rounds are cheap when propagation is ~free, so s-2PL
//    wins — the regime the paper's "size is less of a concern" caveat
//    excludes by assumption.
//
// bandwidth = 0 rows are the infinite-bandwidth reference (bit-identical
// to the paper's pure-propagation model; see bandwidth_equivalence_test).

#include "bench_common.h"

namespace gtpl::bench {
namespace {

void RunBandwidthGrid(const harness::CliOptions& options) {
  std::printf("\n-- bandwidth x latency (50 clients, NIC queues on) --\n");
  harness::Table table({"bw", "latency", "s2pl_resp", "g2pl_resp", "g2pl_adv%",
                        "s2pl_qdelay", "g2pl_qdelay", "s2pl_util%",
                        "g2pl_util%"});
  Grid grid(options);
  struct Row {
    double bandwidth;
    SimTime latency;
    size_t s2pl;
    size_t g2pl;
  };
  std::vector<Row> rows;
  for (double bandwidth : {0.0, 8.0, 2.0, 0.5, 0.125}) {
    for (SimTime latency : {1, 100, 500}) {
      proto::SimConfig config = PaperBaseConfig();
      harness::ApplyScale(options.scale, &config);
      config.latency = latency;
      config.link_bandwidth = bandwidth;
      config.nic_queue = bandwidth > 0.0;
      config.protocol = proto::Protocol::kS2pl;
      const size_t s2pl = grid.Add(config);
      config.protocol = proto::Protocol::kG2pl;
      rows.push_back({bandwidth, latency, s2pl, grid.Add(config)});
    }
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.bandwidth, 3),
                  std::to_string(row.latency),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean), 1),
                  harness::Fmt(s2pl.mean_queue_delay, 1),
                  harness::Fmt(g2pl.mean_queue_delay, 1),
                  harness::Fmt(100 * s2pl.mean_link_utilization, 1),
                  harness::Fmt(100 * g2pl.mean_link_utilization, 1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

void RunCrossoverGrid(const harness::CliOptions& options) {
  std::printf("\n-- LAN crossover (12 clients, latency 1, NIC queues on) --\n");
  harness::Table table({"bw", "s2pl_resp", "g2pl_resp", "g2pl_adv%",
                        "s2pl_p99q", "g2pl_p99q", "s2pl_util%", "g2pl_util%"});
  Grid grid(options);
  struct Row {
    double bandwidth;
    size_t s2pl;
    size_t g2pl;
  };
  std::vector<Row> rows;
  for (double bandwidth : {0.0, 1.0, 0.25, 0.0625, 0.03125}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.num_clients = 12;
    config.latency = 1;
    config.link_bandwidth = bandwidth;
    config.nic_queue = bandwidth > 0.0;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({bandwidth, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.bandwidth, 5),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean), 1),
                  harness::Fmt(s2pl.queue_delay_p99, 0),
                  harness::Fmt(g2pl.queue_delay_p99, 0),
                  harness::Fmt(100 * s2pl.mean_link_utilization, 1),
                  harness::Fmt(100 * g2pl.mean_link_utilization, 1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

void RunCrossTrafficGrid(const harness::CliOptions& options) {
  std::printf(
      "\n-- background cross-traffic (50 clients, latency 100, bw 1) --\n");
  harness::Table table({"load", "s2pl_resp", "g2pl_resp", "g2pl_adv%",
                        "s2pl_util%", "g2pl_util%"});
  Grid grid(options);
  struct Row {
    double load;
    size_t s2pl;
    size_t g2pl;
  };
  std::vector<Row> rows;
  for (double load : {0.0, 0.4, 0.8}) {
    proto::SimConfig config = PaperBaseConfig();
    harness::ApplyScale(options.scale, &config);
    config.latency = 100;
    config.link_bandwidth = 1.0;
    config.nic_queue = true;
    config.cross_traffic_load = load;
    config.protocol = proto::Protocol::kS2pl;
    const size_t s2pl = grid.Add(config);
    config.protocol = proto::Protocol::kG2pl;
    rows.push_back({load, s2pl, grid.Add(config)});
  }
  grid.Run();
  for (const Row& row : rows) {
    const harness::PointResult& s2pl = grid.Result(row.s2pl);
    const harness::PointResult& g2pl = grid.Result(row.g2pl);
    table.AddRow({harness::Fmt(row.load, 1),
                  harness::Fmt(s2pl.response.mean, 0),
                  harness::Fmt(g2pl.response.mean, 0),
                  harness::Fmt(
                      Improvement(s2pl.response.mean, g2pl.response.mean), 1),
                  harness::Fmt(100 * s2pl.mean_link_utilization, 1),
                  harness::Fmt(100 * g2pl.mean_link_utilization, 1)});
  }
  table.Print(options.csv_path);
  grid.PrintSummary();
}

}  // namespace
}  // namespace gtpl::bench

int main(int argc, char** argv) {
  const gtpl::harness::CliOptions options = gtpl::bench::ParseOrDie(argc, argv);
  gtpl::harness::PrintBanner(
      "Extension: finite link bandwidth — transmission + NIC queueing cost",
      options);
  gtpl::bench::RunBandwidthGrid(options);
  gtpl::bench::RunCrossoverGrid(options);
  gtpl::bench::RunCrossTrafficGrid(options);
  return 0;
}
